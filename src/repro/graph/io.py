"""Graph file I/O: DIMACS shortest-path format, SNAP edge lists, Matrix
Market coordinate files.

The paper's datasets come from the 9th/10th DIMACS implementation
challenges and the Stanford SNAP collection; users who have those files
can load them here and run every experiment on the real data.  Writers
are provided so synthetic analogues can be exported and diffed.

Every reader supports three ingestion modes:

- ``mode=None`` (legacy) — each reader's historical behavior;
- ``mode="strict"`` — any structural anomaly (self-loop, duplicate
  edge, out-of-range id, declared/parsed count mismatch) raises
  :class:`~repro.errors.GraphFormatError` naming the file and line;
- ``mode="lenient"`` — anomalies are quarantined and repaired
  (self-loops dropped, duplicates collapsed to the minimum weight,
  dangling ids removed) with the tallies recorded in an
  :class:`IngestReport`.

Independent of mode, weights must be finite and non-negative, and
per-file resource ceilings (:class:`IngestLimits`) abort oversized
inputs early with :class:`~repro.errors.IngestLimitError`.
"""

from __future__ import annotations

import gzip
import os
import re
from dataclasses import dataclass, field
from typing import List, Optional, Set, TextIO, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError, IngestLimitError
from repro.graph.builder import BuildStats, from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.transforms import edge_arrays
from repro.utils.validation import check_finite

__all__ = [
    "IngestLimits",
    "IngestReport",
    "read_dimacs",
    "write_dimacs",
    "read_snap_edgelist",
    "write_snap_edgelist",
    "read_matrix_market",
    "write_matrix_market",
    "read_metis",
    "write_metis",
    "load_graph",
]

PathLike = Union[str, os.PathLike]

_MODES = (None, "strict", "lenient")

#: SNAP files carry their sizes in a comment: '# Nodes: N Edges: M'
_SNAP_HEADER = re.compile(r"Nodes:\s*(\d+)\s+Edges:\s*(\d+)")


def _open_text(path: PathLike, mode: str = "rt") -> TextIO:
    """Open *path* as text, transparently handling ``.gz``.

    ``gzip.open`` defaults to the locale's preferred encoding in text
    mode, so UTF-8 is pinned explicitly — a graph file written on one
    machine must parse identically on every other.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, mode, encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


# ----------------------------------------------------------------------
# Ingestion hardening: limits, reports, and the shared per-read state
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class IngestLimits:
    """Per-file resource ceilings enforced *during* parsing, so a
    pathological file aborts within one line of crossing a limit
    instead of after materializing millions of Python objects."""

    max_nodes: Optional[int] = None
    max_edges: Optional[int] = None
    max_bytes: Optional[int] = None

    def __post_init__(self):
        for fname in ("max_nodes", "max_edges", "max_bytes"):
            value = getattr(self, fname)
            if value is not None and int(value) < 1:
                raise GraphFormatError(f"{fname} must be >= 1, got {value!r}")


@dataclass
class IngestReport:
    """What one reader invocation saw, checked, and repaired.

    Pass an instance as ``report=`` to any reader to have it filled
    in-place; the CLI surfaces these tallies next to its result tables.
    """

    path: str = ""
    mode: Optional[str] = None
    parsed_edges: int = 0
    declared_edges: Optional[int] = None
    self_loops_dropped: int = 0
    duplicates_collapsed: int = 0
    dangling_dropped: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def repairs(self) -> int:
        """Total edges quarantined by lenient-mode repair."""
        return (
            self.self_loops_dropped
            + self.duplicates_collapsed
            + self.dangling_dropped
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "mode": self.mode,
            "parsed_edges": self.parsed_edges,
            "declared_edges": self.declared_edges,
            "self_loops_dropped": self.self_loops_dropped,
            "duplicates_collapsed": self.duplicates_collapsed,
            "dangling_dropped": self.dangling_dropped,
            "repairs": self.repairs,
            "notes": list(self.notes),
        }


class _Ingest:
    """Shared hardening state for one reader invocation."""

    def __init__(
        self,
        path: PathLike,
        mode: Optional[str],
        limits: Optional[IngestLimits],
        report: Optional[IngestReport],
    ):
        if mode not in _MODES:
            raise GraphFormatError(
                f"ingestion mode must be None, 'strict' or 'lenient', got {mode!r}"
            )
        self.path = str(path)
        self.mode = mode
        self.limits = limits
        self.report = report if report is not None else IngestReport()
        self.report.path = self.path
        self.report.mode = mode
        self.stats = BuildStats()
        self._bytes = 0
        self._edges = 0
        self._seen: Optional[Set[Tuple[int, int]]] = (
            set() if mode == "strict" else None
        )

    @property
    def strict(self) -> bool:
        return self.mode == "strict"

    @property
    def lenient(self) -> bool:
        return self.mode == "lenient"

    def line(self, raw: str, lineno: int) -> None:
        """Charge one raw line against the byte ceiling."""
        if self.limits is None or self.limits.max_bytes is None:
            return
        self._bytes += len(raw)
        if self._bytes > self.limits.max_bytes:
            raise IngestLimitError(
                f"{self.path}:{lineno}: input exceeds the "
                f"{self.limits.max_bytes:,}-byte ingestion limit"
            )

    def nodes(self, n: int, lineno: int) -> None:
        """Check a declared node count against the ceiling."""
        if (
            self.limits is not None
            and self.limits.max_nodes is not None
            and n > self.limits.max_nodes
        ):
            raise IngestLimitError(
                f"{self.path}:{lineno}: declares {n:,} nodes, over the "
                f"ingestion limit of {self.limits.max_nodes:,}"
            )

    def edge(self, u: int, v: int, lineno: int) -> bool:
        """Account one parsed edge; returns False when lenient mode
        quarantines it (caller skips the append)."""
        self._edges += 1
        self.report.parsed_edges = self._edges
        if (
            self.limits is not None
            and self.limits.max_edges is not None
            and self._edges > self.limits.max_edges
        ):
            raise IngestLimitError(
                f"{self.path}:{lineno}: more than {self.limits.max_edges:,} "
                "edges (ingestion limit)"
            )
        if u == v:
            if self.strict:
                raise GraphFormatError(
                    f"{self.path}:{lineno}: self-loop at node {u} (strict mode)"
                )
            if self.lenient:
                self.stats.self_loops_dropped += 1
                return False
        if self._seen is not None:
            if (u, v) in self._seen:
                raise GraphFormatError(
                    f"{self.path}:{lineno}: duplicate edge {u} -> {v} (strict mode)"
                )
            self._seen.add((u, v))
        return True

    def dangling(self, lineno: int, line: str) -> bool:
        """Out-of-range endpoint: quarantine in lenient mode (returns
        True), raise otherwise."""
        if self.lenient:
            # Still a parsed line — count it so a file whose only flaw
            # is dangling ids is not also flagged as truncated.
            self._edges += 1
            self.report.parsed_edges = self._edges
            self.stats.dangling_dropped += 1
            return True
        raise GraphFormatError(
            f"{self.path}:{lineno}: node id out of range in {line!r}"
        )

    def weight(self, token: str, lineno: int) -> float:
        """Parse one weight token; NaN, infinities and negatives are
        rejected in every mode (they silently corrupt SSSP otherwise)."""
        try:
            w = check_finite("edge weight", float(token))
        except (TypeError, ValueError) as exc:
            raise GraphFormatError(
                f"{self.path}:{lineno}: bad edge weight {token!r} ({exc})"
            ) from exc
        if w < 0:
            raise GraphFormatError(
                f"{self.path}:{lineno}: negative edge weight {token!r}"
            )
        return w

    def verify_count(self, declared: Optional[int], found: int) -> None:
        """Compare the file's declared edge count with what was parsed."""
        if declared is not None:
            self.report.declared_edges = declared
        if declared is None or found == declared:
            return
        message = (
            f"{self.path}: declares {declared} edges but file has {found} "
            "(truncated or corrupt)"
        )
        if self.lenient:
            self.report.notes.append(message)
            return
        raise GraphFormatError(message)

    def build_kwargs(self, **legacy) -> dict:
        """``from_edge_list`` keywords for this mode, layered over the
        reader's legacy defaults."""
        kwargs = dict(legacy)
        if self.lenient:
            kwargs.update(
                dedupe=True,
                drop_self_loops=True,
                drop_dangling=True,
                stats=self.stats,
            )
        return kwargs

    def finalize(self) -> None:
        """Fold the builder's repair tallies into the report."""
        self.report.self_loops_dropped = self.stats.self_loops_dropped
        self.report.duplicates_collapsed = self.stats.duplicates_collapsed
        self.report.dangling_dropped = self.stats.dangling_dropped


# ----------------------------------------------------------------------
# DIMACS shortest-path challenge format (.gr): 'p sp N M', 'a u v w'
# ----------------------------------------------------------------------

def read_dimacs(
    path: PathLike,
    *,
    name: Optional[str] = None,
    mode: Optional[str] = None,
    limits: Optional[IngestLimits] = None,
    report: Optional[IngestReport] = None,
) -> CSRGraph:
    """Read a 9th-DIMACS ``.gr`` file (1-based ids, weighted arcs)."""
    ing = _Ingest(path, mode, limits, report)
    n = m = None
    srcs: List[int] = []
    dsts: List[int] = []
    wts: List[float] = []
    with _open_text(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            ing.line(raw, lineno)
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] not in ("sp", "edge"):
                    raise GraphFormatError(
                        f"{path}:{lineno}: bad problem line {line!r}"
                    )
                n, m = int(parts[2]), int(parts[3])
                ing.nodes(n, lineno)
            elif parts[0] == "a" or parts[0] == "e":
                if n is None:
                    raise GraphFormatError(
                        f"{path}:{lineno}: arc before problem line"
                    )
                if len(parts) not in (3, 4):
                    raise GraphFormatError(f"{path}:{lineno}: bad arc {line!r}")
                try:
                    u, v = int(parts[1]), int(parts[2])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: non-integer node id in {line!r}"
                    ) from exc
                w = ing.weight(parts[3], lineno) if len(parts) == 4 else 1.0
                in_range = 1 <= u <= n and 1 <= v <= n
                if not in_range:
                    if ing.dangling(lineno, line):
                        continue
                if not ing.edge(u, v, lineno):
                    continue
                srcs.append(u - 1)
                dsts.append(v - 1)
                wts.append(w)
            else:
                raise GraphFormatError(
                    f"{path}:{lineno}: unknown record type {parts[0]!r}"
                )
    if n is None:
        raise GraphFormatError(f"{path}: missing problem line")
    ing.verify_count(m, ing.report.parsed_edges if mode is not None else len(srcs))
    graph = from_edge_list(
        srcs,
        dsts,
        wts,
        **ing.build_kwargs(num_nodes=n, name=name or _stem(path)),
    )
    ing.finalize()
    return graph


def write_dimacs(graph: CSRGraph, path: PathLike) -> None:
    """Write *graph* as a DIMACS ``.gr`` file (weights default to 1)."""
    src, dst, w = edge_arrays(graph)
    if w is None:
        w = np.ones(graph.num_edges)
    with _open_text(path, "wt") as fh:
        fh.write(f"c generated by repro\n")
        fh.write(f"p sp {graph.num_nodes} {graph.num_edges}\n")
        for u, v, wt in zip(src + 1, dst + 1, w):
            fh.write(f"a {u} {v} {_fmt_weight(wt)}\n")


def _fmt_weight(w: float) -> str:
    return str(int(w)) if float(w).is_integer() else repr(float(w))


# ----------------------------------------------------------------------
# SNAP edge lists: '# comment' lines then 'u<TAB>v' per edge, 0-based.
# ----------------------------------------------------------------------

def read_snap_edgelist(
    path: PathLike,
    *,
    name: Optional[str] = None,
    num_nodes: Optional[int] = None,
    mode: Optional[str] = None,
    limits: Optional[IngestLimits] = None,
    report: Optional[IngestReport] = None,
) -> CSRGraph:
    """Read a SNAP-style whitespace-separated edge list (0-based ids).

    When the conventional ``# Nodes: N Edges: M`` comment is present,
    the parsed edge count is verified against ``M`` (a mismatch means a
    truncated download — the most common corruption in practice).
    """
    ing = _Ingest(path, mode, limits, report)
    declared_m: Optional[int] = None
    srcs: List[int] = []
    dsts: List[int] = []
    with _open_text(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            ing.line(raw, lineno)
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                header = _SNAP_HEADER.search(line)
                if header is not None and declared_m is None:
                    ing.nodes(int(header.group(1)), lineno)
                    declared_m = int(header.group(2))
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: bad edge line {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer node id in {line!r}"
                ) from exc
            if u < 0 or v < 0:
                if ing.dangling(lineno, line):
                    continue
            if not ing.edge(u, v, lineno):
                continue
            srcs.append(u)
            dsts.append(v)
    ing.verify_count(declared_m, ing.report.parsed_edges if mode is not None else len(srcs))
    graph = from_edge_list(
        srcs,
        dsts,
        **ing.build_kwargs(
            num_nodes=num_nodes, name=name or _stem(path), dedupe=True
        ),
    )
    ing.finalize()
    return graph


def write_snap_edgelist(graph: CSRGraph, path: PathLike) -> None:
    """Write *graph* as a SNAP-style tab-separated edge list."""
    src, dst, _ = edge_arrays(graph)
    with _open_text(path, "wt") as fh:
        fh.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}\n")
        for u, v in zip(src, dst):
            fh.write(f"{u}\t{v}\n")


# ----------------------------------------------------------------------
# Matrix Market coordinate format (pattern or real, general or symmetric)
# ----------------------------------------------------------------------

def read_matrix_market(
    path: PathLike,
    *,
    name: Optional[str] = None,
    mode: Optional[str] = None,
    limits: Optional[IngestLimits] = None,
    report: Optional[IngestReport] = None,
) -> CSRGraph:
    """Read an ``.mtx`` coordinate file as a graph (rows -> cols edges)."""
    ing = _Ingest(path, mode, limits, report)
    with _open_text(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError(f"{path}: missing MatrixMarket header")
        tokens = header.split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise GraphFormatError(f"{path}: unsupported header {header!r}")
        field_kind, symmetry = tokens[3], tokens[4]
        if field_kind not in ("pattern", "real", "integer"):
            raise GraphFormatError(f"{path}: unsupported field {field_kind!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(f"{path}: unsupported symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            rows, cols, entries = (int(x) for x in line.split())
        except ValueError as exc:
            raise GraphFormatError(f"{path}: bad size line {line!r}") from exc
        ing.nodes(max(rows, cols), 2)
        srcs: List[int] = []
        dsts: List[int] = []
        wts: List[float] = []
        for lineno, raw in enumerate(fh, 1):
            ing.line(raw, lineno)
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            try:
                u, v = int(parts[0]) - 1, int(parts[1]) - 1
            except (ValueError, IndexError) as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: bad coordinate line {line!r}"
                ) from exc
            w = None
            if field_kind != "pattern":
                w = ing.weight(parts[2], lineno) if len(parts) > 2 else 1.0
            if not (0 <= u < rows and 0 <= v < cols):
                if ing.dangling(lineno, line):
                    continue
            if not ing.edge(u + 1, v + 1, lineno):
                continue
            srcs.append(u)
            dsts.append(v)
            if field_kind != "pattern":
                wts.append(w)
    ing.verify_count(entries, ing.report.parsed_edges if mode is not None else len(srcs))
    weights = wts if field_kind != "pattern" else None
    graph = from_edge_list(
        srcs,
        dsts,
        weights,
        **ing.build_kwargs(
            num_nodes=max(rows, cols),
            name=name or _stem(path),
            symmetric=(symmetry == "symmetric"),
            dedupe=True,
        ),
    )
    ing.finalize()
    return graph


def write_matrix_market(graph: CSRGraph, path: PathLike) -> None:
    """Write *graph* as a general coordinate ``.mtx`` file."""
    src, dst, w = edge_arrays(graph)
    field_kind = "real" if w is not None else "pattern"
    with _open_text(path, "wt") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field_kind} general\n")
        n = graph.num_nodes
        fh.write(f"{n} {n} {graph.num_edges}\n")
        if w is not None:
            for u, v, wt in zip(src + 1, dst + 1, w):
                fh.write(f"{u} {v} {_fmt_weight(wt)}\n")
        else:
            for u, v in zip(src + 1, dst + 1):
                fh.write(f"{u} {v}\n")


# ----------------------------------------------------------------------
# METIS format (the 10th DIMACS challenge's distribution format, e.g.
# the CiteSeer co-citation graph): header 'n m [fmt]', then line i lists
# the 1-based neighbors of node i (optionally weighted).
# ----------------------------------------------------------------------

def read_metis(
    path: PathLike,
    *,
    name: Optional[str] = None,
    mode: Optional[str] = None,
    limits: Optional[IngestLimits] = None,
    report: Optional[IngestReport] = None,
) -> CSRGraph:
    """Read a METIS graph file (undirected; both arc directions emitted)."""
    ing = _Ingest(path, mode, limits, report)
    srcs: List[int] = []
    dsts: List[int] = []
    wts: List[float] = []
    n = m = None
    has_edge_weights = False
    node = 0
    with _open_text(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            ing.line(raw, lineno)
            line = raw.strip()
            if line.startswith("%"):
                continue
            parts = line.split()
            if n is None:
                if not line:
                    continue
                if len(parts) < 2:
                    raise GraphFormatError(f"{path}:{lineno}: bad header {line!r}")
                n, m = int(parts[0]), int(parts[1])
                ing.nodes(n, lineno)
                fmt = parts[2] if len(parts) > 2 else "0"
                # fmt is up to 3 digits: vertex sizes, vertex weights,
                # edge weights (we support edge weights only).
                if fmt.lstrip("0") not in ("", "1"):
                    raise GraphFormatError(
                        f"{path}: unsupported METIS fmt {fmt!r} "
                        "(vertex weights/sizes not supported)"
                    )
                has_edge_weights = fmt.endswith("1") and fmt != "0"
                continue
            node += 1
            if node > n:
                raise GraphFormatError(
                    f"{path}:{lineno}: more adjacency lines than the "
                    f"declared {n} vertices"
                )
            step = 2 if has_edge_weights else 1
            if has_edge_weights and len(parts) % 2 != 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: odd token count with edge weights"
                )
            for i in range(0, len(parts), step):
                neighbor = int(parts[i])
                w = ing.weight(parts[i + 1], lineno) if has_edge_weights else None
                if not 1 <= neighbor <= n:
                    if ing.dangling(lineno, line):
                        continue
                if not ing.edge(node, neighbor, lineno):
                    continue
                srcs.append(node - 1)
                dsts.append(neighbor - 1)
                if has_edge_weights:
                    wts.append(w)
    if n is None:
        raise GraphFormatError(f"{path}: empty METIS file")
    if node != n:
        raise GraphFormatError(
            f"{path}: header declares {n} vertices, found {node} adjacency lines"
        )
    arcs = ing.report.parsed_edges if mode is not None else len(srcs)
    if m is not None and arcs != 2 * m and arcs != m:
        # METIS headers count undirected edges; each appears as two arcs
        # (or one, for files listing each direction explicitly).
        message = (
            f"{path}: header declares {m} edges, found {arcs} arcs "
            f"(expected {m} or {2 * m})"
        )
        if ing.lenient:
            ing.report.notes.append(message)
        else:
            raise GraphFormatError(message)
    ing.report.declared_edges = m
    graph = from_edge_list(
        srcs,
        dsts,
        wts if has_edge_weights else None,
        **ing.build_kwargs(num_nodes=n, name=name or _stem(path)),
    )
    ing.finalize()
    return graph


def write_metis(graph: CSRGraph, path: PathLike) -> None:
    """Write *graph* as a METIS file.

    METIS is an undirected format: the graph must be symmetric (each
    arc's reverse present), which is how the paper's undirected datasets
    are stored.
    """
    from repro.graph.properties import is_symmetric

    if not is_symmetric(graph):
        raise GraphFormatError(
            "METIS files are undirected; symmetrize the graph first"
        )
    fmt = "001" if graph.has_weights else "0"
    with _open_text(path, "wt") as fh:
        fh.write(f"{graph.num_nodes} {graph.num_edges // 2}"
                 f"{' ' + fmt if graph.has_weights else ''}\n")
        for node in range(graph.num_nodes):
            neighbors = graph.neighbors(node)
            if graph.has_weights:
                weights = graph.edge_weights_of(node)
                cells = " ".join(
                    f"{int(v) + 1} {_fmt_weight(w)}"
                    for v, w in zip(neighbors, weights)
                )
            else:
                cells = " ".join(str(int(v) + 1) for v in neighbors)
            fh.write(cells + "\n")


def load_graph(path: PathLike, **kwargs) -> CSRGraph:
    """Dispatch on file extension: ``.gr`` DIMACS, ``.mtx`` Matrix Market,
    ``.txt``/``.edges``/``.el`` SNAP edge list (``.gz`` variants allowed).

    Keyword arguments — including ``mode``, ``limits`` and ``report`` —
    are forwarded to the format's reader.
    """
    base = str(path)
    if base.endswith(".gz"):
        base = base[:-3]
    ext = os.path.splitext(base)[1].lower()
    if ext == ".gr":
        return read_dimacs(path, **kwargs)
    if ext == ".mtx":
        return read_matrix_market(path, **kwargs)
    if ext in (".graph", ".metis"):
        return read_metis(path, **kwargs)
    if ext in (".txt", ".edges", ".el", ".snap"):
        return read_snap_edgelist(path, **kwargs)
    raise GraphFormatError(f"cannot infer graph format from path {path!r}")


def _stem(path: PathLike) -> str:
    base = os.path.basename(str(path))
    for suffix in (".gz", ".gr", ".mtx", ".graph", ".metis", ".txt", ".edges", ".el", ".snap"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
    return base or "graph"
