"""Graph characterization: the statistics the paper's Table 1 reports and
the topology attributes the adaptive runtime's graph inspector consumes.

Includes degree summaries, outdegree histograms (Figure 1), a BFS-based
pseudo-diameter estimate, and reachability/component helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.stats import Histogram, degree_histogram_bins, histogram

__all__ = [
    "GraphCharacterization",
    "characterize",
    "out_degree_histogram",
    "bfs_levels",
    "reachable_count",
    "pseudo_diameter",
    "is_symmetric",
    "largest_out_component_node",
]


@dataclass(frozen=True)
class GraphCharacterization:
    """One row of the paper's Table 1 plus derived attributes."""

    name: str
    num_nodes: int
    num_edges: int
    min_out_degree: int
    max_out_degree: int
    avg_out_degree: float
    out_degree_std: float
    pseudo_diameter: Optional[int] = None

    def table_row(self) -> Tuple:
        """Cells in the order of Table 1: network, #nodes, #edges, min/max/avg."""
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            self.min_out_degree,
            self.max_out_degree,
            round(self.avg_out_degree, 1),
        )


def characterize(
    graph: CSRGraph, *, estimate_diameter: bool = False, seed: SeedLike = 0
) -> GraphCharacterization:
    """Compute the Table-1 statistics for *graph*.

    The pseudo-diameter (expensive: a few BFS sweeps) is only computed
    when *estimate_diameter* is set.
    """
    deg = graph.out_degrees
    if graph.num_nodes == 0:
        return GraphCharacterization(graph.name, 0, 0, 0, 0, 0.0, 0.0)
    diam = pseudo_diameter(graph, seed=seed) if estimate_diameter else None
    return GraphCharacterization(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        min_out_degree=int(deg.min()),
        max_out_degree=int(deg.max()),
        avg_out_degree=float(deg.mean()),
        out_degree_std=float(deg.std()),
        pseudo_diameter=diam,
    )


def out_degree_histogram(graph: CSRGraph, n_bins: int = 16) -> Histogram:
    """Histogram of outdegrees with geometric bins (Figure 1 series)."""
    deg = graph.out_degrees
    max_deg = int(deg.max()) if deg.size else 0
    edges = degree_histogram_bins(max_deg, n_bins=n_bins)
    return histogram(deg, edges)


# ----------------------------------------------------------------------
# Lightweight traversal utilities (independent of the simulator; these are
# plain host-side analyses used by the inspector and by tests as oracles).
# ----------------------------------------------------------------------

def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Level-synchronous BFS; returns int64 levels, -1 for unreachable."""
    graph._check_node(source)
    n = graph.num_nodes
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    offsets, cols = graph.row_offsets, graph.col_indices
    level = 0
    while frontier.size:
        level += 1
        # Gather all neighbors of the frontier in one vectorized sweep.
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        idx = _ragged_gather_indices(starts, ends)
        neigh = cols[idx]
        fresh = np.unique(neigh[levels[neigh] == -1])
        if fresh.size == 0:
            break
        levels[fresh] = level
        frontier = fresh
    return levels


def _ragged_gather_indices(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Indices covering ``[starts[i], ends[i])`` for all i, concatenated.

    Vectorized replacement for ``np.concatenate([np.arange(s, e) ...])``.
    Zero-length segments are skipped (they would otherwise corrupt the
    difference-encoding trick below).
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    lengths = ends - starts
    nonzero = lengths > 0
    if not nonzero.all():
        starts, ends, lengths = starts[nonzero], ends[nonzero], lengths[nonzero]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Difference encoding: ones everywhere, with each segment's first slot
    # holding the jump from the previous segment's last index.
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    boundaries = np.cumsum(lengths)[:-1]
    if boundaries.size:
        out[boundaries] = starts[1:] - (ends[:-1] - 1)
    return np.cumsum(out)


def reachable_count(graph: CSRGraph, source: int) -> int:
    """Number of nodes reachable from *source* (including itself)."""
    return int((bfs_levels(graph, source) >= 0).sum())


def pseudo_diameter(graph: CSRGraph, *, sweeps: int = 4, seed: SeedLike = 0) -> int:
    """Lower bound on the diameter via repeated double-sweep BFS.

    Starts from a random node, repeatedly jumps to the farthest node found
    and re-runs BFS; the largest eccentricity observed is returned.  Exact
    on trees; a good lower bound in general, sufficient for classifying
    'large-diameter' road networks vs. 'small-world' social graphs.
    """
    if graph.num_nodes == 0:
        return 0
    rng = make_rng(seed)
    node = int(rng.integers(0, graph.num_nodes))
    best = 0
    for _ in range(max(1, sweeps)):
        levels = bfs_levels(graph, node)
        reached = levels >= 0
        if not reached.any():
            break
        ecc = int(levels[reached].max())
        best = max(best, ecc)
        farthest = int(np.argmax(np.where(reached, levels, -1)))
        if farthest == node:
            break
        node = farthest
    return best


def is_symmetric(graph: CSRGraph) -> bool:
    """True when for every edge u->v the edge v->u also exists."""
    n = graph.num_nodes
    src = np.repeat(np.arange(n, dtype=np.int64), graph.out_degrees)
    dst = graph.col_indices.astype(np.int64)
    fwd = np.unique(src * n + dst)
    bwd = np.unique(dst * n + src)
    return fwd.size == bwd.size and bool(np.array_equal(fwd, bwd))


def largest_out_component_node(graph: CSRGraph, *, samples: int = 8, seed: SeedLike = 0) -> int:
    """A node whose BFS reaches the most nodes among *samples* random tries.

    Used to pick traversal sources that exercise a large fraction of the
    graph, the way the paper's experiments traverse from well-connected
    sources.
    """
    if graph.num_nodes == 0:
        raise ValueError("empty graph has no nodes")
    rng = make_rng(seed)
    candidates = rng.integers(0, graph.num_nodes, size=max(1, samples))
    # Always consider the max-outdegree node: in heavy-tailed graphs it is
    # almost surely inside the giant component.
    candidates = np.append(candidates, int(np.argmax(graph.out_degrees)))
    best_node, best_count = int(candidates[0]), -1
    for cand in np.unique(candidates):
        count = reachable_count(graph, int(cand))
        if count > best_count:
            best_node, best_count = int(cand), count
    return best_node
