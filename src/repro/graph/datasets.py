"""Synthetic analogues of the paper's six evaluation datasets.

The paper evaluates on CO-road (9th DIMACS), CiteSeer co-citation
(10th DIMACS), p2p-Gnutella, Amazon co-purchase, Google web, and a
LiveJournal social network ("SNS") from SNAP (Table 1, Figure 1).  Those
files are not redistributable here, so each dataset gets a seeded
generator matched to its published structure:

==========  =========  ==========  =======  ============================
dataset     nodes      edges       avg deg  distribution shape
==========  =========  ==========  =======  ============================
co-road     435,666    ~1.0 M      ~2.5     near-uniform 1-4, max ~8,
                                            huge diameter (undirected)
citeseer    434,102    ~16 M       ~73.9    heavy tail, max ~1,188
                                            (undirected co-citation)
p2p          36,692    ~0.18 M     ~4.9     heavy tail, moderate max
amazon      403,394    ~3.4 M      ~8.4     70 % of nodes at outdeg 10,
                                            rest uniform 1-9, max 10
google      739,454    ~2.5 M      ~3.4     heavy tail, max ~456
sns       4,308,452    ~34.5 M     ~8.0     R-MAT-style social network
==========  =========  ==========  =======  ============================

``make_dataset(key, scale=...)`` shrinks the node count while preserving
the degree structure, so laptop-scale runs keep the paper's qualitative
behaviour.  Loaders for the real files live in :mod:`repro.graph.io`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    attach_uniform_weights,
    power_law_graph,
    regular_outdegree_graph,
    rmat_graph,
    road_network,
)
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.validation import check_in_range

__all__ = ["DatasetSpec", "DATASETS", "make_dataset", "dataset_keys", "paper_table1_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics + generator for one Table-1 dataset."""

    key: str
    description: str
    domain: str
    paper_nodes: int
    paper_edges: int
    paper_avg_outdegree: float
    paper_max_outdegree: int
    directed: bool
    #: called as factory(num_nodes, max_degree, rng) -> CSRGraph
    factory: Callable[[int, int, object], CSRGraph]


def _co_road(n: int, max_deg: int, rng) -> CSRGraph:
    return road_network(n, seed=rng, name="co-road")


def _citeseer(n: int, max_deg: int, rng) -> CSRGraph:
    return power_law_graph(
        n,
        alpha=1.45,
        min_degree=1,
        max_degree=max_deg,
        in_degree_skew=2.5,
        symmetric=True,
        seed=rng,
        name="citeseer",
    )


def _p2p(n: int, max_deg: int, rng) -> CSRGraph:
    return power_law_graph(
        n,
        alpha=1.95,
        min_degree=1,
        max_degree=max_deg,
        in_degree_skew=1.0,
        seed=rng,
        name="p2p",
    )


def _amazon(n: int, max_deg: int, rng) -> CSRGraph:
    return regular_outdegree_graph(
        n, modal_degree=10, modal_fraction=0.7, seed=rng, name="amazon"
    )


def _google(n: int, max_deg: int, rng) -> CSRGraph:
    return power_law_graph(
        n,
        alpha=2.3,
        min_degree=1,
        max_degree=max_deg,
        in_degree_skew=1.3,
        seed=rng,
        name="google",
    )


def _sns(n: int, max_deg: int, rng) -> CSRGraph:
    g = rmat_graph(
        scale=max(4, (n - 1).bit_length()),
        edge_factor=9.0,
        seed=rng,
        name="sns",
        num_nodes=n,
    )
    return g


DATASETS: Dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in [
        DatasetSpec(
            key="co-road",
            description="Colorado road network (9th DIMACS challenge)",
            domain="road",
            paper_nodes=435_666,
            paper_edges=1_057_066,
            paper_avg_outdegree=2.5,
            paper_max_outdegree=8,
            directed=False,
            factory=_co_road,
        ),
        DatasetSpec(
            key="citeseer",
            description="CiteSeer paper co-citation network (10th DIMACS)",
            domain="citation",
            paper_nodes=434_102,
            paper_edges=16_036_720,
            paper_avg_outdegree=73.9,
            paper_max_outdegree=1_188,
            directed=False,
            factory=_citeseer,
        ),
        DatasetSpec(
            key="p2p",
            description="Gnutella peer-to-peer network (SNAP)",
            domain="p2p",
            paper_nodes=36_692,
            paper_edges=183_000,
            paper_avg_outdegree=4.9,
            paper_max_outdegree=78,
            directed=True,
            factory=_p2p,
        ),
        DatasetSpec(
            key="amazon",
            description="Amazon product co-purchase network (SNAP)",
            domain="retail",
            paper_nodes=403_394,
            paper_edges=3_387_388,
            paper_avg_outdegree=8.4,
            paper_max_outdegree=10,
            directed=True,
            factory=_amazon,
        ),
        DatasetSpec(
            key="google",
            description="Google web link network (SNAP)",
            domain="web",
            paper_nodes=739_454,
            paper_edges=2_500_000,
            paper_avg_outdegree=3.4,
            paper_max_outdegree=456,
            directed=True,
            factory=_google,
        ),
        DatasetSpec(
            key="sns",
            description="LiveJournal social network (SNAP)",
            domain="social",
            paper_nodes=4_308_452,
            paper_edges=34_500_000,
            paper_avg_outdegree=8.0,
            paper_max_outdegree=2_000,
            directed=True,
            factory=_sns,
        ),
    ]
}


def dataset_keys() -> Tuple[str, ...]:
    """The dataset keys in the paper's Table-1 order."""
    return tuple(DATASETS.keys())


def make_dataset(
    key: str,
    *,
    scale: float = 0.05,
    weighted: bool = False,
    weight_range: Tuple[float, float] = (1.0, 100.0),
    seed: SeedLike = 0,
    min_nodes: int = 256,
) -> CSRGraph:
    """Generate the analogue of dataset *key* at the given *scale*.

    ``scale=1.0`` targets the paper's node count; smaller values shrink
    the graph proportionally (never below *min_nodes*) while keeping the
    degree distribution shape.  *weighted* attaches uniform integer edge
    weights in *weight_range* (the paper's SSSP setup).
    """
    spec = DATASETS.get(key)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {key!r}; available: {', '.join(DATASETS)}"
        )
    check_in_range("scale", scale, low=1e-6, high=1.0)
    n = max(min_nodes, int(round(spec.paper_nodes * scale)))
    # Max degree stays absolute (capped by n) so the heavy tail survives
    # down-scaling — the tail is what drives warp divergence.
    max_deg = min(spec.paper_max_outdegree, n - 1)
    gen_rng, weight_rng = spawn_rngs(seed, 2)
    graph = spec.factory(n, max_deg, gen_rng)
    if weighted:
        graph = attach_uniform_weights(
            graph, low=weight_range[0], high=weight_range[1], seed=weight_rng
        )
    return graph


def paper_table1_rows() -> Tuple[Tuple, ...]:
    """The paper's Table-1 rows (published values) for report printing."""
    return tuple(
        (
            spec.key,
            spec.paper_nodes,
            spec.paper_edges,
            spec.paper_avg_outdegree,
            spec.paper_max_outdegree,
        )
        for spec in DATASETS.values()
    )
