"""Graph substrate: CSR storage, construction, generators, I/O, analysis.

The paper stores graphs in compressed sparse row (CSR) form on both the
host and the (simulated) device: a *node vector* of row offsets and an
*edge vector* of neighbor ids (Section V.A, Figure 7).  This package
provides that representation plus everything needed to feed it:

- :mod:`repro.graph.csr` — the :class:`CSRGraph` structure;
- :mod:`repro.graph.builder` — edge lists / COO / networkx -> CSR;
- :mod:`repro.graph.generators` — synthetic topology generators;
- :mod:`repro.graph.datasets` — analogues of the paper's six datasets;
- :mod:`repro.graph.io` — DIMACS / SNAP / Matrix Market readers+writers;
- :mod:`repro.graph.properties` — degree statistics and characterization;
- :mod:`repro.graph.transforms` — symmetrize, relabel, subgraph, components;
- :mod:`repro.graph.partition` — 1D vertex partitioning for multi-device
  sharded traversal (contiguous and degree-balanced strategies);
- :mod:`repro.graph.dynamic` — mutation batches, the delta-CSR overlay
  and priced compaction for graphs changing under live traffic.
"""

from repro.graph.builder import (
    BuildStats,
    from_coo,
    from_edge_list,
    from_networkx,
    to_networkx,
)
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import (
    CompactionResult,
    DeltaOverlayGraph,
    EdgeBatch,
    MutationDelta,
    MutationReport,
    load_mutations_jsonl,
)
from repro.graph.io import IngestLimits, IngestReport, load_graph
from repro.graph.partition import (
    PARTITION_STRATEGIES,
    GraphShard,
    partition_graph,
    reassemble,
)
from repro.graph.properties import GraphCharacterization, characterize, out_degree_histogram

__all__ = [
    "CSRGraph",
    "BuildStats",
    "from_edge_list",
    "from_coo",
    "from_networkx",
    "to_networkx",
    "IngestLimits",
    "IngestReport",
    "load_graph",
    "EdgeBatch",
    "DeltaOverlayGraph",
    "MutationDelta",
    "MutationReport",
    "CompactionResult",
    "load_mutations_jsonl",
    "characterize",
    "GraphCharacterization",
    "out_degree_histogram",
    "GraphShard",
    "PARTITION_STRATEGIES",
    "partition_graph",
    "reassemble",
]
