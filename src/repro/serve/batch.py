"""The batch runner: many ``(algorithm, source, mode)`` queries, one graph.

:class:`BatchRunner` takes a :class:`~repro.serve.session.GraphSession`
and a list of :class:`BatchQuery` requests and answers all of them:

- queries whose algorithm supports the batched multi-source frame
  (the registry's ``batchable`` capability flag) are stacked into one
  :func:`~repro.engine.batch.run_batch_frame` call — one host loop, one
  fused readback per super-iteration, fused same-variant launches;
- everything else (ordered variants, non-batchable algorithms) falls
  back to its ordinary single-source entry point, each run wrapped in
  :func:`~repro.reliability.guard.guarded_query` so one faulting query
  cannot take the batch down.

Each query gets its *own* variant policy and decision trace, and batched
answers are bit-identical to single-source runs (the engine fuses only
pricing, never the functional update) — :class:`QueryResult` carries a
SHA-256 of the value array so parity is checkable from the manifest
alone.

Queries arrive programmatically or as JSONL
(:func:`load_queries_jsonl`): one object per line, e.g.
``{"algorithm": "bfs", "source": 17, "mode": "adaptive"}``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.policies import AdaptivePolicy
from repro.core.runtime import adaptive_run, run_static
from repro.engine.batch import QueryPlan, run_batch_frame
from repro.engine.registry import get_algorithm
from repro.engine.types import StaticPolicy
from repro.errors import ReproError, RuntimeConfigError
from repro.kernels.variants import Ordering, Variant
from repro.obs.manifest import RunManifest, build_batch_manifest
from repro.reliability.guard import guarded_query
from repro.serve.session import GraphSession

__all__ = [
    "BatchQuery",
    "QueryResult",
    "BatchResult",
    "BatchRunner",
    "load_queries_jsonl",
]

_QUERY_FIELDS = {"algorithm", "source", "mode", "priority", "deadline_s"}


@dataclass(frozen=True)
class BatchQuery:
    """One request: which algorithm, from which source, in which mode.

    *mode* is ``"adaptive"`` or a static variant code (``"U_T_BM"``,
    ``"O_B_QU"``, ...).  *priority* and *deadline_s* only matter to the
    serving loop (:mod:`repro.serve.loop`): higher priority wins under
    backpressure, and the deadline clock starts at admission.
    """

    algorithm: str = "bfs"
    source: int = 0
    mode: str = "adaptive"
    priority: int = 0
    deadline_s: Optional[float] = None

    @classmethod
    def from_dict(cls, doc: dict) -> "BatchQuery":
        unknown = set(doc) - _QUERY_FIELDS
        if unknown:
            raise RuntimeConfigError(
                f"unknown batch-query fields: {sorted(unknown)} "
                f"(known: {sorted(_QUERY_FIELDS)})"
            )
        if "source" not in doc:
            raise RuntimeConfigError("batch query needs a 'source' field")
        if not isinstance(doc["source"], int) or isinstance(doc["source"], bool):
            raise RuntimeConfigError(
                f"batch-query source must be an integer, got {doc['source']!r}"
            )
        priority = doc.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise RuntimeConfigError(
                f"batch-query priority must be an integer, got {priority!r}"
            )
        deadline_s = doc.get("deadline_s")
        if deadline_s is not None:
            if isinstance(deadline_s, bool) or not isinstance(
                deadline_s, (int, float)
            ):
                raise RuntimeConfigError(
                    f"batch-query deadline_s must be a number, "
                    f"got {deadline_s!r}"
                )
            if deadline_s <= 0:
                raise RuntimeConfigError(
                    f"batch-query deadline_s must be > 0, got {deadline_s}"
                )
            deadline_s = float(deadline_s)
        return cls(
            algorithm=str(doc.get("algorithm", "bfs")),
            source=doc["source"],
            mode=str(doc.get("mode", "adaptive")),
            priority=priority,
            deadline_s=deadline_s,
        )

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "source": self.source,
            "mode": self.mode,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
        }


def load_queries_jsonl(path) -> List[BatchQuery]:
    """Parse a JSONL query file: one :class:`BatchQuery` object per
    non-empty line.  Malformed lines raise :class:`RuntimeConfigError`
    naming the line number — a bad query *file* is a caller error, not a
    per-query fault."""
    queries: List[BatchQuery] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RuntimeConfigError(
                    f"{path}:{lineno}: invalid JSON in query file: {exc}"
                ) from exc
            if not isinstance(doc, dict):
                raise RuntimeConfigError(
                    f"{path}:{lineno}: each query line must be a JSON object"
                )
            try:
                queries.append(BatchQuery.from_dict(doc))
            except RuntimeConfigError as exc:
                raise RuntimeConfigError(f"{path}:{lineno}: {exc}") from exc
    if not queries:
        raise RuntimeConfigError(f"{path}: query file holds no queries")
    return queries


@dataclass
class QueryResult:
    """One answered (or isolated) query."""

    index: int
    query: BatchQuery
    #: True when the query rode the fused multi-source frame
    batched: bool
    #: the algorithm's answer array; None when the query failed
    values: Optional[np.ndarray]
    #: SHA-256 over the raw value bytes (None when failed)
    values_sha256: Optional[str]
    iterations: int
    #: simulated seconds — per-run for fallback queries, 0.0 for batched
    #: ones (their time lives on the batch's shared timeline)
    seconds: float
    error: Optional[str] = None
    #: the query's own decision trace (adaptive mode)
    trace: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def summary(self) -> dict:
        """JSON-shaped per-query record for the batch manifest."""
        out = {
            "index": self.index,
            "algorithm": self.query.algorithm,
            "source": self.query.source,
            "mode": self.query.mode,
            "batched": self.batched,
            "ok": self.ok,
            "iterations": self.iterations,
            "seconds": float(self.seconds),
            "values_sha256": self.values_sha256,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class BatchResult:
    """Everything one batch produced, plus the amortization story."""

    queries: List[QueryResult]
    graph_digest: str
    #: simulated seconds of the fused batch timeline
    batch_seconds: float
    #: simulated seconds across single-source fallback runs
    fallback_seconds: float
    super_iterations: int = 0
    fused_launches: int = 0
    launches_saved: int = 0
    readbacks_saved: int = 0

    @property
    def total_seconds(self) -> float:
        return self.batch_seconds + self.fallback_seconds

    @property
    def ok_count(self) -> int:
        return sum(1 for q in self.queries if q.ok)

    def result_dict(self) -> dict:
        """The manifest's free-form ``result`` payload."""
        return {
            "kind": "batch",
            "num_queries": len(self.queries),
            "ok": self.ok_count,
            "failed": len(self.queries) - self.ok_count,
            "batched": sum(1 for q in self.queries if q.batched),
            "fallback": sum(1 for q in self.queries if not q.batched),
            "graph_digest": self.graph_digest,
            "total_seconds": float(self.total_seconds),
            "batch_seconds": float(self.batch_seconds),
            "fallback_seconds": float(self.fallback_seconds),
            "super_iterations": self.super_iterations,
            "fused_launches": self.fused_launches,
            "launches_saved": self.launches_saved,
            "readbacks_saved": self.readbacks_saved,
            "queries": [q.summary() for q in self.queries],
        }


def _sha256(values: Optional[np.ndarray]) -> Optional[str]:
    if values is None:
        return None
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


def _trace_decisions(result: QueryResult) -> List[dict]:
    """The query's decisions, each tagged with its query index."""
    import dataclasses

    trace = result.trace
    if trace is None or not getattr(trace, "decisions", None):
        return []
    out = []
    for decision in trace.decisions:
        doc = dataclasses.asdict(decision)
        doc["query_index"] = result.index
        out.append(doc)
    return out


class BatchRunner:
    """Answers batches of queries against one :class:`GraphSession`."""

    def __init__(
        self,
        session: GraphSession,
        *,
        max_iterations: Optional[int] = None,
    ):
        self.session = session
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------

    def run(self, queries: Sequence[Union[BatchQuery, dict]]) -> BatchResult:
        """Answer every query; failures are isolated, never raised."""
        queries = [
            q if isinstance(q, BatchQuery) else BatchQuery.from_dict(q)
            for q in queries
        ]
        results: List[Optional[QueryResult]] = [None] * len(queries)
        plans: List[QueryPlan] = []
        plan_indices: List[int] = []
        fallback_indices: List[int] = []

        for i, query in enumerate(queries):
            try:
                route = self._route(query)
            except ReproError as exc:
                results[i] = QueryResult(
                    index=i, query=query, batched=False, values=None,
                    values_sha256=None, iterations=0, seconds=0.0,
                    error=str(exc),
                )
                continue
            if route is None:
                fallback_indices.append(i)
            else:
                plans.append(route)
                plan_indices.append(i)

        batch_seconds = 0.0
        stats = {}
        if plans:
            frame = run_batch_frame(
                self.session.graph,
                plans,
                device=self.session.device,
                max_iterations=self.max_iterations,
                queue_gen=self.session.config.queue_gen,
            )
            batch_seconds = frame.total_seconds
            stats = {
                "super_iterations": frame.super_iterations,
                "fused_launches": frame.fused_launches,
                "launches_saved": frame.launches_saved,
                "readbacks_saved": frame.readbacks_saved,
            }
            for i, outcome in zip(plan_indices, frame.queries):
                results[i] = QueryResult(
                    index=i,
                    query=queries[i],
                    batched=True,
                    values=outcome.values,
                    values_sha256=_sha256(outcome.values),
                    iterations=outcome.num_iterations,
                    seconds=0.0,
                    error=outcome.error,
                    trace=outcome.trace,
                )

        fallback_seconds = 0.0
        for i in fallback_indices:
            result = self._run_single(i, queries[i])
            fallback_seconds += result.seconds
            results[i] = result

        return BatchResult(
            queries=[r for r in results if r is not None],
            graph_digest=self.session.digest,
            batch_seconds=batch_seconds,
            fallback_seconds=fallback_seconds,
            **stats,
        )

    def to_manifest(
        self, batch: BatchResult, *, observer=None
    ) -> RunManifest:
        """The batch's :class:`~repro.obs.RunManifest` (mode ``batch``)."""
        decisions: List[dict] = []
        for result in batch.queries:
            decisions.extend(_trace_decisions(result))
        return build_batch_manifest(
            batch.result_dict(),
            graph=self.session.graph,
            device=self.session.device,
            config=self.session.config,
            observer=observer,
            decisions=decisions,
        )

    # ------------------------------------------------------------------

    def _route(self, query: BatchQuery) -> Optional[QueryPlan]:
        """A :class:`QueryPlan` when the query can ride the batched
        frame, None for the single-source fallback.  Raises
        :class:`~repro.errors.ReproError` for unanswerable queries
        (unknown algorithm, bad mode) — the caller isolates those."""
        session = self.session
        info = get_algorithm(query.algorithm)
        if query.mode == "adaptive":
            if not info.adaptive_eligible or not info.batchable:
                return None
            policy = AdaptivePolicy(
                session.graph, session.config, device=session.device
            )
            return QueryPlan(info.make_spec(), query.source, policy)
        variant = Variant.parse(query.mode)
        if not info.batchable or variant.ordering is Ordering.ORDERED:
            # Ordered frames keep per-query structures (findmin, pair
            # multisets) the multi-source frame does not stack.
            return None
        if not info.supports_variants:
            return None
        return QueryPlan(info.make_spec(), query.source, StaticPolicy(variant))

    def _run_single(self, index: int, query: BatchQuery) -> QueryResult:
        """The guarded single-source fallback path."""
        session = self.session

        def run():
            if query.mode == "adaptive":
                return adaptive_run(
                    session.graph,
                    query.algorithm,
                    query.source,
                    config=session.config,
                    device=session.device,
                    max_iterations=self.max_iterations,
                )
            return run_static(
                session.graph,
                query.source,
                query.algorithm,
                query.mode,
                device=session.device,
                max_iterations=self.max_iterations,
            )

        result, error = guarded_query(
            run, label=f"query {index} ({query.algorithm} @ {query.source})"
        )
        if result is None:
            return QueryResult(
                index=index, query=query, batched=False, values=None,
                values_sha256=None, iterations=0, seconds=0.0, error=error,
            )
        traversal = getattr(result, "traversal", result)
        return QueryResult(
            index=index,
            query=query,
            batched=False,
            values=traversal.values,
            values_sha256=_sha256(traversal.values),
            iterations=traversal.num_iterations,
            seconds=float(traversal.total_seconds),
            error=None,
            trace=getattr(result, "trace", None),
        )
