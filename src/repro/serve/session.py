"""Graph sessions: ingest once, serve many queries.

A :class:`GraphSession` pins everything a query needs that does not
depend on the query itself: the CSR arrays, the Table-1 property
profile, the resolved decision :class:`~repro.core.decision.Thresholds`
and the :class:`~repro.gpusim.device.DeviceSpec`.  Building one is the
expensive part of answering a graph query (ingestion, characterization,
threshold resolution); answering the query itself is cheap — so a
serving process keeps sessions in a :class:`SessionCache`, an LRU keyed
by the graph's *content digest* (the same blake2b digest run manifests
carry).  Two graphs with identical CSR content share a session no
matter how they were loaded or named; any content change — scale, seed,
repair — changes the digest and misses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.config import RuntimeConfig
from repro.errors import RuntimeConfigError
from repro.graph.csr import CSRGraph
from repro.graph.properties import characterize
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.obs.context import current_observer
from repro.obs.manifest import graph_fingerprint

__all__ = ["GraphSession", "SessionCache"]


class GraphSession:
    """One ingested graph plus every query-independent derived artifact."""

    def __init__(
        self,
        graph: CSRGraph,
        *,
        device: DeviceSpec = TESLA_C2070,
        config: Optional[RuntimeConfig] = None,
    ):
        self.graph = graph
        self.device = device
        self.config = config or RuntimeConfig()
        #: manifest-compatible fingerprint (name, sizes, content digest)
        self.fingerprint = graph_fingerprint(graph)
        #: the cache key: blake2b digest of the CSR arrays
        self.digest: str = self.fingerprint["digest"]
        #: Table-1 property profile (degree stats etc.)
        self.profile = characterize(graph)
        #: decision thresholds resolved once for (device, graph size) —
        #: already clamped to a consistent ordering
        self.thresholds = self.config.resolve_thresholds(device, graph.num_nodes)

    @property
    def num_nodes(self) -> int:
        return int(self.graph.num_nodes)

    def refresh(self, graph: CSRGraph) -> None:
        """Re-point this session at a mutated (compacted) graph.

        Every query-independent artifact is recomputed from the new
        CSR arrays — fingerprint/digest, property profile, resolved
        thresholds — so policy decisions never see pre-mutation stats,
        while the session object itself (and anything holding it)
        survives.  The profile refresh is degree-vector work only, not
        a full re-ingest.
        """
        self.graph = graph
        self.fingerprint = graph_fingerprint(graph)
        self.digest = self.fingerprint["digest"]
        self.profile = characterize(graph)
        self.thresholds = self.config.resolve_thresholds(
            self.device, graph.num_nodes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphSession({self.graph.name!r}, n={self.graph.num_nodes}, "
            f"digest={self.digest[:8]}..., device={self.device.name!r})"
        )


class SessionCache:
    """LRU cache of :class:`GraphSession` objects keyed by content digest.

    ``get`` is the only entry point: it returns the cached session when
    the graph's digest (and device) match, otherwise ingests a fresh
    session and evicts the least-recently-used one past *capacity*.
    A digest hit under a *different* device is a miss — thresholds are
    device-resolved — and replaces the stale session.
    """

    def __init__(self, capacity: int = 4):
        if capacity < 1:
            raise RuntimeConfigError(
                f"session cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._sessions: "OrderedDict[str, GraphSession]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: in-place mutation patches (epoch-aware invalidation): the
        #: cached session was re-keyed under the post-mutation digest
        #: without being evicted or rebuilt
        self.patches = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def digests(self):
        """Cached digests from least- to most-recently used."""
        return list(self._sessions)

    def get(
        self,
        graph: CSRGraph,
        *,
        device: DeviceSpec = TESLA_C2070,
        config: Optional[RuntimeConfig] = None,
    ) -> GraphSession:
        digest = graph_fingerprint(graph)["digest"]
        session = self._sessions.get(digest)
        if session is not None and session.device is device:
            self._sessions.move_to_end(digest)
            self.hits += 1
            self._observe("hits")
            return session
        self.misses += 1
        self._observe("misses")
        session = GraphSession(graph, device=device, config=config)
        self._sessions[digest] = session
        self._sessions.move_to_end(digest)
        while len(self._sessions) > self.capacity:
            self._sessions.popitem(last=False)
            self.evictions += 1
            self._observe("evictions")
        return session

    def patch(self, session: GraphSession, graph: CSRGraph) -> GraphSession:
        """Epoch-aware invalidation: re-key *session* in place.

        After a mutation batch compacts, the serving loop calls this
        with the held session and the post-mutation graph: the session
        is :meth:`~GraphSession.refresh`-ed (new digest, profile,
        thresholds) and moved under its new key without eviction — the
        next ``get`` with the mutated graph is a *hit* on the same
        object.  Non-incremental consumers keying on the digest simply
        see it bump: the old digest no longer resolves.
        """
        if self._sessions.get(session.digest) is not session:
            raise RuntimeConfigError(
                "cannot patch a session this cache does not hold "
                f"(digest {session.digest[:8]}...)"
            )
        del self._sessions[session.digest]
        session.refresh(graph)
        # A different session already cached under the new digest is
        # superseded by the patched one (counted as an eviction).
        if session.digest in self._sessions:
            del self._sessions[session.digest]
            self.evictions += 1
            self._observe("evictions")
        self._sessions[session.digest] = session
        self._sessions.move_to_end(session.digest)
        self.patches += 1
        self._observe("patches")
        return session

    def _observe(self, event: str) -> None:
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter(f"serve.cache.{event}").inc()
