"""Admission control: the bounded queue in front of the serve loop.

A serving process that accepts unboundedly eventually answers nobody —
queue wait grows past every deadline and memory grows past the box.
The :class:`AdmissionQueue` is the explicit alternative: a fixed
*capacity*, a deadline clock that starts the moment a query is
**admitted** (queue wait counts against the budget — the
:class:`~repro.reliability.watchdog.Watchdog` is armed here, not when
the query first touches the GPU), and a shed policy that turns
overload into explicit, attributable error responses instead of
crashes or silent drops.

Shed policy under backpressure, in order:

1. A query arriving at a full queue displaces the lowest-priority
   queued entry *only if* it outranks it (strictly higher
   ``priority``); ties shed the newcomer, preserving FIFO fairness.
2. Entries whose deadline expires while still queued are collected by
   :meth:`AdmissionQueue.expire_overdue` — the loop answers them with a
   deadline error without ever spending GPU time on them.

Every outcome is observable: ``serve.admitted`` / ``serve.shed``
counters and the ``serve.queue_depth`` gauge (high-water mark in its
``max`` field) in the metrics catalog.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import RuntimeConfigError
from repro.obs.context import current_observer
from repro.reliability.watchdog import Watchdog
from repro.serve.batch import BatchQuery

__all__ = ["AdmittedQuery", "AdmissionOutcome", "AdmissionQueue"]


@dataclass
class AdmittedQuery:
    """One queued request and its admission-time bookkeeping."""

    #: monotonically increasing submission number (exactly-once key)
    seq: int
    query: BatchQuery
    #: input line number when the query came over the wire (None for
    #: programmatic submissions); echoed back in the response
    line: Optional[int]
    priority: int
    #: effective deadline (query's own, or the loop default); None = none
    deadline_s: Optional[float]
    #: wall clock at admission (latency measurements start here)
    admitted_at: float
    #: simulated clock at admission
    admitted_sim: float
    #: armed at admission, so queue wait burns deadline budget
    watchdog: Watchdog

    @property
    def overdue(self) -> bool:
        return (
            self.deadline_s is not None
            and self.watchdog.remaining_s == 0.0
        )


@dataclass
class AdmissionOutcome:
    """What :meth:`AdmissionQueue.offer` did with one submission."""

    #: the entry now sitting in the queue (None when the newcomer shed)
    admitted: Optional[AdmittedQuery]
    #: the entry shed to make the decision — either a displaced queued
    #: entry or the (never-admitted) newcomer; None when nobody shed
    shed: Optional[AdmittedQuery] = None


class AdmissionQueue:
    """Bounded, priority-aware FIFO of :class:`AdmittedQuery` entries."""

    def __init__(
        self,
        *,
        capacity: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise RuntimeConfigError(
                f"admission-queue capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._clock = clock
        self._entries: List[AdmittedQuery] = []
        self._seq = 0
        self.admitted_total = 0
        self.shed_total = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def depth(self) -> int:
        return len(self._entries)

    def _entry(
        self,
        query: BatchQuery,
        line: Optional[int],
        deadline_s: Optional[float],
        sim_now: float,
    ) -> AdmittedQuery:
        self._seq += 1
        return AdmittedQuery(
            seq=self._seq,
            query=query,
            line=line,
            priority=query.priority,
            deadline_s=deadline_s,
            admitted_at=self._clock(),
            admitted_sim=sim_now,
            watchdog=Watchdog(deadline_s=deadline_s, clock=self._clock),
        )

    def offer(
        self,
        query: BatchQuery,
        *,
        line: Optional[int] = None,
        deadline_s: Optional[float] = None,
        sim_now: float = 0.0,
    ) -> AdmissionOutcome:
        """Admit *query* or shed somebody; never raises on overload.

        Returns an :class:`AdmissionOutcome`; when its ``shed`` field is
        set, the caller owes that entry an explicit shed response
        (exactly-once accounting — shed queries are answered, not
        dropped).
        """
        entry = self._entry(query, line, deadline_s, sim_now)
        if len(self._entries) >= self.capacity:
            victim = min(
                self._entries, key=lambda e: (e.priority, -e.seq)
            )
            if entry.priority > victim.priority:
                self._entries.remove(victim)
                self._admit(entry)
                self._shed()
                return AdmissionOutcome(admitted=entry, shed=victim)
            self._shed()
            return AdmissionOutcome(admitted=None, shed=entry)
        self._admit(entry)
        return AdmissionOutcome(admitted=entry)

    def _admit(self, entry: AdmittedQuery) -> None:
        entry.watchdog.arm()
        self._entries.append(entry)
        self.admitted_total += 1
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("serve.admitted").inc()
            observer.metrics.gauge("serve.queue_depth").set(len(self._entries))

    def _shed(self) -> None:
        self.shed_total += 1
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("serve.shed").inc()
            observer.metrics.gauge("serve.queue_depth").set(len(self._entries))

    # ------------------------------------------------------------------

    def expire_overdue(self) -> List[AdmittedQuery]:
        """Remove and return entries whose deadline expired while they
        waited — the loop answers them without spending GPU time."""
        overdue = [e for e in self._entries if e.overdue]
        if overdue:
            self._entries = [e for e in self._entries if not e.overdue]
            observer = current_observer()
            if observer is not None:
                observer.metrics.gauge("serve.queue_depth").set(
                    len(self._entries)
                )
        return overdue

    def pop(self, limit: int) -> List[AdmittedQuery]:
        """Dequeue up to *limit* entries, highest priority first, FIFO
        within a priority level."""
        if limit <= 0 or not self._entries:
            return []
        ordered = sorted(self._entries, key=lambda e: (-e.priority, e.seq))
        taken = ordered[:limit]
        taken_ids = {id(e) for e in taken}
        self._entries = [e for e in self._entries if id(e) not in taken_ids]
        observer = current_observer()
        if observer is not None:
            observer.metrics.gauge("serve.queue_depth").set(len(self._entries))
        return taken
