"""The fault-isolated continuous-batching serve loop.

:class:`ServeLoop` is the resilient core behind ``repro serve``.  It
connects four pieces the rest of the stack already provides:

- an :class:`~repro.serve.admission.AdmissionQueue` in front — bounded,
  priority-aware, deadline clocks armed at **admission** so queue wait
  burns budget;
- a long-lived :class:`~repro.engine.batch.BatchFrame` in the middle —
  new queries join the fused slab at the next super-iteration
  (*continuous batching*) instead of waiting for the running batch to
  drain, and a fault attributable to one query ejects only that row;
- the guarded single-source fallback
  (:func:`~repro.reliability.guard.guarded_query`) behind it — ejected
  and unbatchable queries are re-run in isolation;
- a :class:`~repro.reliability.CircuitBreaker` across both paths —
  a (path, algorithm, mode) combination that keeps failing is routed
  around (batch rows go straight to the fallback; a broken fallback is
  answered with an explicit error) instead of failing again per query.

Invariants the chaos harness (:mod:`repro.serve.chaos`) asserts:

1. **No crash** — every failure mode becomes an error *response*.
2. **Exactly once** — every submitted query produces exactly one
   response (shed, deadline, error or value), keyed by ``seq``.
3. **Isolation** — queries untouched by faults answer SHA-identical to
   a fault-free run (the engine fuses pricing, never values).

Two scheduler modes exist so the benefit is measurable
(``benchmarks/bench_serve_slo.py``): ``"continuous"`` admits queued
queries into the live frame before every super-iteration;
``"drain"`` is the classic drain-then-refill baseline that only admits
when the frame is empty.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.errors import GraphError, ReproError
from repro.graph.dynamic import DeltaOverlayGraph, EdgeBatch
from repro.obs.context import current_observer
from repro.obs.manifest import RunManifest, build_serve_manifest
from repro.reliability.breaker import CircuitBreaker
from repro.serve.admission import AdmissionQueue, AdmittedQuery
from repro.serve.batch import BatchQuery, BatchRunner, _sha256
from repro.serve.session import GraphSession, SessionCache

__all__ = ["ServeLoop", "ServeReport", "percentile"]

#: response ``path`` values, the full vocabulary
RESPONSE_PATHS = ("batch", "fallback", "shed", "deadline", "error")

_SCHEDULERS = ("continuous", "drain")


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return float(ordered[rank])


@dataclass
class ServeReport:
    """The session's SLO story, JSON-shaped for the serve manifest."""

    scheduler: str
    submitted: int = 0
    admitted: int = 0
    answered: int = 0
    ok: int = 0
    shed: int = 0
    deadline_misses: int = 0
    fallbacks: int = 0
    rows_ejected: int = 0
    errors: int = 0
    super_iterations: int = 0
    queue_depth_high_water: int = 0
    batch_sim_seconds: float = 0.0
    fallback_sim_seconds: float = 0.0
    wall_latencies_s: List[float] = field(default_factory=list)
    sim_latencies_s: List[float] = field(default_factory=list)
    breaker: dict = field(default_factory=dict)
    breaker_transitions: List[dict] = field(default_factory=list)
    #: mutation batches applied at super-iteration barriers
    mutations_applied: int = 0
    #: rejected mutation batches (validation failures become events,
    #: never crashes)
    mutations_rejected: int = 0
    #: the session's final graph epoch (0 = never mutated)
    graph_epoch: int = 0
    #: one event dict per mutation barrier (counts, digests, pricing)
    mutation_events: List[dict] = field(default_factory=list)

    @property
    def total_sim_seconds(self) -> float:
        return self.batch_sim_seconds + self.fallback_sim_seconds

    def result_dict(self) -> dict:
        """The manifest's free-form ``result`` payload."""
        return {
            "kind": "serve",
            "scheduler": self.scheduler,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "answered": self.answered,
            "ok": self.ok,
            "errors": self.errors,
            "shed": self.shed,
            "deadline_misses": self.deadline_misses,
            "fallbacks": self.fallbacks,
            "rows_ejected": self.rows_ejected,
            "super_iterations": self.super_iterations,
            "queue_depth_high_water": self.queue_depth_high_water,
            "total_sim_seconds": float(self.total_sim_seconds),
            "batch_sim_seconds": float(self.batch_sim_seconds),
            "fallback_sim_seconds": float(self.fallback_sim_seconds),
            "latency_wall_s": {
                "p50": percentile(self.wall_latencies_s, 50),
                "p99": percentile(self.wall_latencies_s, 99),
                "max": max(self.wall_latencies_s, default=0.0),
            },
            "latency_sim_s": {
                "p50": percentile(self.sim_latencies_s, 50),
                "p99": percentile(self.sim_latencies_s, 99),
                "max": max(self.sim_latencies_s, default=0.0),
            },
            "breaker": self.breaker,
            "breaker_transitions": self.breaker_transitions,
            "mutations_applied": self.mutations_applied,
            "mutations_rejected": self.mutations_rejected,
            "graph_epoch": self.graph_epoch,
            "mutation_events": self.mutation_events,
        }


class ServeLoop:
    """Admission → continuous batch frame → guarded fallback, with a
    circuit breaker across the seams.

    Drive it with :meth:`submit` per query, :meth:`pump` to make
    progress (one super-iteration plus any fallback work), and
    :meth:`drain` to run everything to completion.  Responses accumulate
    in order of *completion* and are collected with
    :meth:`take_responses` — each is a JSON-shaped dict carrying the
    query's ``seq``/``line``, its ``path`` (one of
    :data:`RESPONSE_PATHS`), and admission-to-answer latencies.
    """

    def __init__(
        self,
        session: GraphSession,
        *,
        queue_capacity: int = 64,
        max_batch_rows: int = 32,
        default_deadline_s: Optional[float] = None,
        scheduler: str = "continuous",
        max_iterations: Optional[int] = None,
        fault_injector=None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
        cache: Optional[SessionCache] = None,
        mutation_mode: Optional[str] = "strict",
    ):
        if scheduler not in _SCHEDULERS:
            raise ReproError(
                f"unknown scheduler {scheduler!r} (choose from {_SCHEDULERS})"
            )
        if max_batch_rows < 1:
            raise ReproError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ReproError(
                f"default deadline must be positive, got {default_deadline_s}"
            )
        self.session = session
        self.scheduler = scheduler
        self.max_batch_rows = max_batch_rows
        self.default_deadline_s = default_deadline_s
        self.fault_injector = fault_injector
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._clock = clock
        self.queue = AdmissionQueue(capacity=queue_capacity, clock=clock)
        self._runner = BatchRunner(session, max_iterations=max_iterations)
        self._frame = None
        #: BatchFrame row index -> AdmittedQuery (exactly-once ledger)
        self._in_flight: Dict[int, AdmittedQuery] = {}
        self._responses: List[dict] = []
        self.report = ServeReport(scheduler=scheduler)
        #: live graph mutation state (``repro serve --mutations``)
        self.cache = cache
        self.mutation_mode = mutation_mode
        self.graph_epoch = 0
        self._pending_mutations: List[EdgeBatch] = []
        #: simulated seconds of frames already retired at mutation
        #: barriers plus compaction work — keeps :attr:`sim_now`
        #: monotonic across frame rebuilds
        self._retired_sim_seconds = 0.0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self, query: Union[BatchQuery, dict], *, line: Optional[int] = None
    ) -> None:
        """Offer one query to the admission queue.

        Malformed *query* dicts raise
        :class:`~repro.errors.RuntimeConfigError` — a protocol error the
        caller turns into its own error response.  Overload never
        raises: shed queries get explicit shed responses.
        """
        if not isinstance(query, BatchQuery):
            query = BatchQuery.from_dict(query)
        self.report.submitted += 1
        deadline = (
            query.deadline_s
            if query.deadline_s is not None
            else self.default_deadline_s
        )
        outcome = self.queue.offer(
            query, line=line, deadline_s=deadline, sim_now=self.sim_now
        )
        if outcome.shed is not None:
            self._respond_shed(outcome.shed)
        self._note_queue_depth()

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------

    @property
    def sim_now(self) -> float:
        """The loop's simulated clock: retired frames + the live batch
        timeline + fallback runs + compaction work."""
        batch = self._frame.timeline.total_seconds if self._frame else 0.0
        return self._retired_sim_seconds + batch + self.report.fallback_sim_seconds

    @property
    def busy(self) -> bool:
        """Work outstanding: queued entries, live frame rows or
        mutation batches awaiting their barrier."""
        if len(self.queue) or self._pending_mutations:
            return True
        return bool(self._frame is not None and self._in_flight)

    def pump(self) -> bool:
        """One scheduling round: expire overdue queue entries, apply
        pending mutations at the barrier (the frame drained), admit
        into the frame (continuous: always; drain: only when the frame
        is empty), run one super-iteration, route whatever finished.
        Returns True when it made progress."""
        progressed = False
        for entry in self.queue.expire_overdue():
            self._respond_deadline(
                entry, "deadline exceeded while queued "
                f"(budget {entry.deadline_s} s)"
            )
            progressed = True

        # Mutation barrier: pending batches stall admission; once the
        # live rows drain, the graph epoch advances and the frame is
        # rebuilt on the compacted graph.  Every in-flight query keeps
        # the graph it was dispatched on (exactly-once untouched).
        if self._pending_mutations and not self._in_flight:
            self._apply_mutations()
            progressed = True

        admit_ok = not self._pending_mutations and (
            self.scheduler == "continuous" or not self._in_flight
        )
        if admit_ok and len(self.queue):
            taken = self.queue.pop(
                self.max_batch_rows - len(self._in_flight)
            )
            for entry in taken:
                self._dispatch(entry)
                progressed = True

        if self._frame is not None and self._in_flight:
            stepped = self._step_frame()
            progressed = progressed or stepped
            for outcome in self._frame.take_finished():
                entry = self._in_flight.pop(outcome.index, None)
                if entry is None:  # pragma: no cover - ledger invariant
                    continue
                self._route_outcome(entry, outcome)
                progressed = True
        return progressed

    def drain(self) -> None:
        """Run until every submitted query has been answered."""
        while self.busy:
            if not self.pump():  # pragma: no cover - liveness backstop
                raise ReproError(
                    "serve loop stalled with work outstanding "
                    f"({len(self.queue)} queued, "
                    f"{len(self._in_flight)} in flight)"
                )

    def take_responses(self) -> List[dict]:
        """Responses completed since the last call, completion-ordered."""
        out, self._responses = self._responses, []
        return out

    # ------------------------------------------------------------------
    # Graph mutations (applied at super-iteration barriers)
    # ------------------------------------------------------------------

    def submit_mutation(self, batch: EdgeBatch) -> None:
        """Queue one mutation batch for the next barrier.

        The batch is held until the live frame drains, then applied
        through the delta overlay, compacted (priced: host rebuild +
        delta PCIe upload burn simulated time, so deadline clocks feel
        mutations), and the session is patched in place — the next
        dispatch runs on the new graph epoch.
        """
        self._pending_mutations.append(batch)

    def _apply_mutations(self) -> None:
        """The barrier: fold every pending batch into the session.

        A batch that fails validation becomes a rejected mutation
        *event* (invariant 1: failures never crash the loop); the
        remaining batches still apply.  All surviving batches share one
        compaction and one epoch bump.
        """
        batches, self._pending_mutations = self._pending_mutations, []
        # Retire the drained frame's timeline into the monotonic base
        # before rebuilding it on the new graph.
        if self._frame is not None:
            self._retired_sim_seconds += self._frame.timeline.total_seconds
            self._frame = None
        overlay = DeltaOverlayGraph(self.session.graph)
        deltas = []
        for batch in batches:
            try:
                deltas.append(overlay.apply(batch, mode=self.mutation_mode))
            except GraphError as exc:
                self.report.mutations_rejected += 1
                self.report.mutation_events.append(
                    {
                        "ok": False,
                        "graph_epoch": self.graph_epoch,
                        "error": str(exc),
                        "ops": len(batch.ops),
                        "path": batch.path,
                    }
                )
        if not deltas:
            return
        old_digest = self.session.digest
        compaction = overlay.compact(
            device=self.session.device, name=self.session.graph.name
        )
        self._retired_sim_seconds += compaction.seconds
        if self.cache is not None:
            self.cache.patch(self.session, compaction.graph)
        else:
            self.session.refresh(compaction.graph)
        # One epoch per applied batch (even when a barrier coalesces
        # several): epoch k always names the graph after the first k
        # batches, which is what the chaos harness verifies against.
        self.graph_epoch += len(deltas)
        self.report.mutations_applied += len(deltas)
        self.report.graph_epoch = self.graph_epoch
        event = {
            "ok": True,
            "graph_epoch": self.graph_epoch,
            "batches": len(deltas),
            "edges_inserted": sum(d.num_inserts for d in deltas),
            "edges_deleted": sum(d.num_deletes for d in deltas),
            "nodes_added": sum(d.nodes_added for d in deltas),
            "old_digest": old_digest,
            "new_digest": self.session.digest,
            "compaction_seconds": float(compaction.seconds),
            "delta_bytes": int(compaction.delta_bytes),
        }
        self.report.mutation_events.append(event)
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("serve.mutation_barriers").inc()
            observer.metrics.gauge("dynamic.epoch").set(self.graph_epoch)

    # ------------------------------------------------------------------
    # Dispatch: queue entry -> batch row or fallback
    # ------------------------------------------------------------------

    def _dispatch(self, entry: AdmittedQuery) -> None:
        query = entry.query
        try:
            plan = self._runner._route(query)
        except ReproError as exc:
            self._respond_error(entry, str(exc))
            return
        batch_key = ("batch", query.algorithm, query.mode)
        if plan is not None and self.breaker.allow(batch_key):
            frame = self._ensure_frame()
            row = frame.admit(
                [plan], watchdogs=[entry.watchdog], isolate_capacity=True
            )[0]
            self._in_flight[row.index] = entry
            return
        # Unbatchable, or the batch path's circuit is open.
        self._fallback(entry, reason=None)

    def _ensure_frame(self):
        if self._frame is None:
            from repro.engine.batch import BatchFrame

            self._frame = BatchFrame(
                self.session.graph,
                device=self.session.device,
                max_iterations=self._runner.max_iterations,
                queue_gen=self.session.config.queue_gen,
                fault_hook=self.fault_injector,
            )
        return self._frame

    def _step_frame(self) -> bool:
        before = self._frame.timeline.total_seconds
        if self.fault_injector is not None:
            with self.fault_injector.installed():
                stepped = self._frame.step()
        else:
            stepped = self._frame.step()
        self.report.batch_sim_seconds += (
            self._frame.timeline.total_seconds - before
        )
        self.report.super_iterations = self._frame.super_iterations
        return stepped

    # ------------------------------------------------------------------
    # Routing finished rows
    # ------------------------------------------------------------------

    def _route_outcome(self, entry: AdmittedQuery, outcome) -> None:
        query = entry.query
        batch_key = ("batch", query.algorithm, query.mode)
        if outcome.ok:
            self.breaker.record_success(batch_key)
            # Latency on the simulated clock, admission to completion:
            # queue wait while earlier batches ran counts (that is the
            # whole continuous-vs-drain story), plus the row's share of
            # every pass it rode (outcome.sim_seconds is the in-frame
            # part alone).
            self._respond_ok(
                entry, path="batch", values=outcome.values,
                iterations=outcome.num_iterations,
                sim_latency=max(0.0, self.sim_now - entry.admitted_sim),
            )
            return
        if outcome.ejected and outcome.eject_kind == "deadline":
            self._respond_deadline(entry, outcome.error)
            return
        if outcome.ejected:  # kind == "fault"
            self.breaker.record_failure(batch_key)
            self.report.rows_ejected += 1
            self._fallback(entry, reason=outcome.error)
            return
        if outcome.error.startswith("admission refused"):
            # No room on the device for another row: the fallback runs
            # it alone (its own h2d, its own timeline).
            self._fallback(entry, reason=None)
            return
        # Plain per-query error (validation, iteration cap): the query's
        # own fault — answer it, leave the breaker alone.
        self._respond_error(entry, outcome.error)

    # ------------------------------------------------------------------
    # The guarded fallback path
    # ------------------------------------------------------------------

    def _fallback(self, entry: AdmittedQuery, *, reason: Optional[str]) -> None:
        query = entry.query
        if entry.deadline_s is not None and entry.watchdog.remaining_s == 0.0:
            self._respond_deadline(
                entry, "deadline exceeded before fallback "
                f"(budget {entry.deadline_s} s)"
            )
            return
        key = ("fallback", query.algorithm, query.mode)
        if not self.breaker.allow(key):
            detail = f" (after {reason})" if reason else ""
            self._respond_error(
                entry,
                f"fallback circuit open for {query.algorithm}/{query.mode}"
                f"{detail}",
            )
            return
        if self.fault_injector is not None:
            with self.fault_injector.installed():
                result = self._runner._run_single(entry.seq, query)
        else:
            result = self._runner._run_single(entry.seq, query)
        self.report.fallback_sim_seconds += result.seconds
        self.report.fallbacks += 1
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("serve.fallbacks").inc()
        if result.ok:
            self.breaker.record_success(key)
            self._respond_ok(
                entry, path="fallback", values=result.values,
                iterations=result.iterations,
                sim_latency=max(0.0, self.sim_now - entry.admitted_sim),
            )
        else:
            self.breaker.record_failure(key)
            self._respond_error(entry, result.error)

    # ------------------------------------------------------------------
    # Responses (the only way a query leaves the loop)
    # ------------------------------------------------------------------

    def _base_response(self, entry: AdmittedQuery, path: str) -> dict:
        return {
            "seq": entry.seq,
            "line": entry.line,
            "algorithm": entry.query.algorithm,
            "source": entry.query.source,
            "mode": entry.query.mode,
            "priority": entry.priority,
            "deadline_s": entry.deadline_s,
            "path": path,
            "graph_epoch": self.graph_epoch,
            "latency_wall_s": max(0.0, self._clock() - entry.admitted_at),
        }

    def _emit(self, doc: dict) -> None:
        self._responses.append(doc)
        self.report.answered += 1
        if doc["ok"]:
            self.report.ok += 1
        else:
            self.report.errors += 1
        self.report.wall_latencies_s.append(doc["latency_wall_s"])
        self.report.sim_latencies_s.append(doc.get("latency_sim_s", 0.0))
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("serve.answered").inc()
            observer.metrics.histogram("serve.latency_wall_s").observe(
                doc["latency_wall_s"]
            )
            observer.metrics.histogram("serve.latency_sim_s").observe(
                doc.get("latency_sim_s", 0.0)
            )
        self._note_queue_depth()

    def _respond_ok(
        self, entry: AdmittedQuery, *, path: str, values, iterations: int,
        sim_latency: float,
    ) -> None:
        doc = self._base_response(entry, path)
        doc.update(
            ok=True,
            iterations=iterations,
            values_sha256=_sha256(values),
            latency_sim_s=float(sim_latency),
        )
        self._emit(doc)

    def _respond_error(self, entry: AdmittedQuery, message: str) -> None:
        doc = self._base_response(entry, "error")
        doc.update(ok=False, values_sha256=None, error=message)
        self._emit(doc)

    def _respond_deadline(self, entry: AdmittedQuery, message: str) -> None:
        self.report.deadline_misses += 1
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("serve.deadline_misses").inc()
        doc = self._base_response(entry, "deadline")
        doc.update(ok=False, values_sha256=None, error=message)
        self._emit(doc)

    def _respond_shed(self, entry: AdmittedQuery) -> None:
        doc = self._base_response(entry, "shed")
        doc.update(
            ok=False,
            values_sha256=None,
            error=(
                "shed: admission queue full "
                f"(capacity {self.queue.capacity}); retry later"
            ),
        )
        self.report.shed += 1
        self._emit(doc)

    def _note_queue_depth(self) -> None:
        depth = len(self.queue)
        if depth > self.report.queue_depth_high_water:
            self.report.queue_depth_high_water = depth

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def finalize(self) -> ServeReport:
        """Freeze the report: admitted/shed totals, breaker snapshot
        and transition history."""
        self.report.admitted = self.queue.admitted_total
        self.report.shed = self.queue.shed_total
        self.report.breaker = self.breaker.snapshot()
        self.report.breaker_transitions = self.breaker.transition_log()
        return self.report

    def to_manifest(self, *, observer=None) -> RunManifest:
        """The session's :class:`~repro.obs.RunManifest` (mode
        ``serve``)."""
        self.finalize()
        return build_serve_manifest(
            self.report.result_dict(),
            graph=self.session.graph,
            device=self.session.device,
            config=self.session.config,
            observer=observer,
        )
