"""repro.serve — the batched multi-source traversal service.

A traversal *service* answers many queries against the same graph, so
the expensive work should happen once per graph, not once per query:

- :class:`GraphSession` ingests a graph once and caches everything
  query-independent — CSR arrays, property profile, resolved decision
  thresholds, device spec — under a content digest;
- :class:`SessionCache` is the LRU of sessions a long-lived server
  keeps (hit = skip ingestion entirely; answers from a cached session
  are bit-identical to a cold ingest);
- :class:`BatchRunner` answers a list of :class:`BatchQuery` requests,
  stacking every batch-capable query into one fused multi-source host
  loop (:func:`repro.engine.batch.run_batch_frame`) that amortizes the
  per-iteration readback, kernel-launch overhead and the graph's h2d
  copy across the batch, while isolating faulting queries and falling
  back to guarded single-source runs for algorithms without batch
  support;
- :class:`ServeLoop` is the resilient continuous-batching scheduler a
  long-running server drives: a bounded :class:`AdmissionQueue`
  (overload sheds with explicit error responses, priorities displace),
  per-query deadlines armed at admission, new queries joining the
  fused frame at the next super-iteration, per-row fault isolation
  with a guarded fallback, and a circuit breaker across both paths.
  The chaos harness in :mod:`repro.serve.chaos` soaks the whole stack
  under seeded faults and checks no-crash / exactly-once / SHA-parity
  invariants.

CLI: ``repro batch`` (one JSONL query file, one manifest),
``repro serve`` (JSONL queries on stdin, JSON answers on stdout) and
``repro chaos`` (seeded soak, exit 0 iff every invariant held).
See ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionQueue, AdmittedQuery
from repro.serve.batch import (
    BatchQuery,
    BatchResult,
    BatchRunner,
    QueryResult,
    load_queries_jsonl,
)
from repro.serve.loop import ServeLoop, ServeReport
from repro.serve.session import GraphSession, SessionCache

__all__ = [
    "AdmissionQueue",
    "AdmittedQuery",
    "BatchQuery",
    "BatchResult",
    "BatchRunner",
    "GraphSession",
    "QueryResult",
    "ServeLoop",
    "ServeReport",
    "SessionCache",
    "load_queries_jsonl",
]
