"""The chaos harness: soak the serve loop under seeded faults and
assert the invariants a resilient service must keep.

``repro chaos`` (and ``tools/chaos_serve.py``) runs two passes over the
same seeded query stream against the same graph:

1. a **fault-free reference** — every distinct ``(algorithm, source,
   mode)`` triple answered once through the ordinary batch runner, its
   value SHA recorded;
2. a **chaos pass** — the full :class:`~repro.serve.loop.ServeLoop`
   under a seeded :class:`~repro.reliability.FaultPlan`, deadline
   pressure and a bounded admission queue.

Then it checks, mechanically, the three invariants:

- **no crash** — the pass returning at all is the first check; every
  failure mode must have become a response;
- **exactly once** — every submitted query produced exactly one
  response (keyed by submission ``seq``), no drops, no duplicates;
- **isolation** — every ``ok`` response's ``values_sha256`` equals the
  fault-free reference for its triple: faults may slow queries down or
  force them through the fallback, but they may never change an answer
  that is delivered as a success.

Violations are collected (not raised) so the CLI can print all of them
and exit nonzero; :attr:`ChaosReport.passed` is the single verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.dynamic import DeltaOverlayGraph, EdgeBatch
from repro.graph.generators import attach_uniform_weights, power_law_graph
from repro.obs.context import current_observer
from repro.obs.manifest import graph_fingerprint
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.serve.batch import BatchQuery, BatchRunner
from repro.serve.loop import ServeLoop, ServeReport
from repro.serve.session import GraphSession, SessionCache

__all__ = [
    "ChaosReport",
    "ShardChaosReport",
    "default_chaos_plan",
    "default_shard_chaos_plan",
    "generate_mutations",
    "generate_queries",
    "run_chaos",
    "run_shard_chaos",
]

#: modes the generator draws from (adaptive-heavy, some static codes)
_CHAOS_MODES = ("adaptive", "adaptive", "adaptive", "U_T_BM", "U_B_QU")


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """A plan mean enough to exercise every recovery path."""
    return FaultPlan(
        seed=seed,
        launch_failure_rate=0.02,
        memory_fault_rate=0.03,
        latency_spike_rate=0.05,
        latency_spike_factor=4.0,
    )


def generate_queries(
    num_queries: int,
    num_nodes: int,
    *,
    seed: int = 0,
    algorithms: Tuple[str, ...] = ("bfs", "sssp"),
    deadline_s: Optional[float] = None,
    deadline_fraction: float = 0.25,
) -> List[BatchQuery]:
    """A seeded, reproducible query stream: mixed algorithms and modes,
    a spread of priorities, and (when *deadline_s* is set) a slice of
    deadline-carrying queries."""
    import numpy as np

    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(num_queries):
        deadline = None
        if deadline_s is not None and rng.random() < deadline_fraction:
            deadline = float(deadline_s)
        queries.append(
            BatchQuery(
                algorithm=str(rng.choice(algorithms)),
                source=int(rng.integers(0, num_nodes)),
                mode=str(rng.choice(_CHAOS_MODES)),
                priority=int(rng.integers(0, 3)),
                deadline_s=deadline,
            )
        )
    return queries


def generate_mutations(
    graph,
    num_batches: int,
    *,
    ops_per_batch: int = 12,
    seed: int = 0,
    mode: str = "lenient",
):
    """Seeded mutation batches plus the graph each epoch materializes.

    Returns ``(batches, epoch_graphs)`` where ``epoch_graphs[k]`` is the
    graph after the first *k* batches — epoch 0 is *graph* itself.  The
    epoch graphs go through the same overlay/compaction machinery the
    serve loop uses, so their content digests are the post-compaction
    references the chaos soak asserts against.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    overlay = DeltaOverlayGraph(graph)
    weighted = graph.weights is not None
    batches = []
    epoch_graphs = [graph]
    for k in range(num_batches):
        cur = epoch_graphs[-1]
        src_all = np.repeat(np.arange(cur.num_nodes), cur.out_degrees)
        docs = []
        num_dels = min(ops_per_batch // 3, cur.num_edges)
        for idx in rng.choice(cur.num_edges, size=num_dels, replace=False):
            docs.append(
                {"op": "delete", "u": int(src_all[idx]), "v": int(cur.col_indices[idx])}
            )
        while len(docs) < ops_per_batch:
            u = int(rng.integers(0, cur.num_nodes))
            v = int(rng.integers(0, cur.num_nodes))
            if u == v:
                continue
            doc = {"op": "insert", "u": u, "v": v}
            if weighted:
                doc["weight"] = float(np.float32(rng.integers(1, 9)))
            docs.append(doc)
        batch = EdgeBatch.from_docs(
            ((i + 1, doc) for i, doc in enumerate(docs)),
            path=f"<chaos-batch-{k}>",
        )
        overlay.apply(batch, mode=mode)
        epoch_graphs.append(overlay.materialize(name=graph.name))
        batches.append(batch)
    return batches, epoch_graphs


@dataclass
class ChaosReport:
    """One soak's verdict: counts, the serve report, and violations."""

    num_queries: int
    plan: dict
    serve: ServeReport
    #: the session the soak ran against (manifest building); not part
    #: of :meth:`result_dict`
    session: Optional[GraphSession] = None
    faults_injected: int = 0
    #: invariant breaches, human-readable; empty == the soak passed
    violations: List[str] = field(default_factory=list)
    duplicate_responses: int = 0
    missing_responses: int = 0
    sha_mismatches: int = 0
    #: mutation soak bookkeeping (zero when no mutations interleaved)
    mutation_batches: int = 0
    mutation_digest_mismatches: int = 0
    cache_patches: int = 0
    cache_evictions: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    def result_dict(self) -> dict:
        doc = self.serve.result_dict()
        doc.update(
            kind="chaos",
            num_queries=self.num_queries,
            fault_plan=self.plan,
            faults_injected=self.faults_injected,
            passed=self.passed,
            violations=list(self.violations),
            duplicate_responses=self.duplicate_responses,
            missing_responses=self.missing_responses,
            sha_mismatches=self.sha_mismatches,
            mutation_batches=self.mutation_batches,
            mutation_digest_mismatches=self.mutation_digest_mismatches,
            cache_patches=self.cache_patches,
            cache_evictions=self.cache_evictions,
        )
        return doc


def _reference_shas(
    session: GraphSession, queries: List[BatchQuery]
) -> Dict[Tuple[str, int, str], Optional[str]]:
    """Fault-free answers per distinct (algorithm, source, mode)."""
    triples = []
    seen = set()
    for q in queries:
        triple = (q.algorithm, q.source, q.mode)
        if triple not in seen:
            seen.add(triple)
            triples.append(BatchQuery(*triple))
    result = BatchRunner(session).run(triples)
    return {
        (r.query.algorithm, r.query.source, r.query.mode): r.values_sha256
        for r in result.queries
    }


def run_chaos(
    *,
    num_queries: int = 200,
    num_nodes: int = 600,
    seed: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    queue_capacity: int = 48,
    max_batch_rows: int = 16,
    deadline_s: Optional[float] = 5.0,
    scheduler: str = "continuous",
    session: Optional[GraphSession] = None,
    pump_every: int = 4,
    mutation_batches: int = 0,
    mutation_ops: int = 12,
) -> ChaosReport:
    """Run one seeded chaos soak and return its :class:`ChaosReport`.

    Submissions interleave with :meth:`~repro.serve.loop.ServeLoop.pump`
    calls (every *pump_every* queries) so new queries genuinely join a
    running frame, then the loop drains.  Nothing here raises on a fault
    — an exception escaping *is* the no-crash invariant failing, and the
    test suite treats it as such.

    *mutation_batches* > 0 turns the soak dynamic: seeded mutation
    batches (:func:`generate_mutations`) are interleaved with the query
    stream, and the isolation invariant becomes epoch-aware — every
    ``ok`` response must match the fault-free reference *for the graph
    epoch it was answered on*, and every applied batch's post-compaction
    digest must equal the independently materialized epoch graph's.
    """
    cache = SessionCache(capacity=4)
    if session is None:
        graph = attach_uniform_weights(
            power_law_graph(num_nodes, seed=seed, name=f"chaos{num_nodes}"),
            seed=seed,
        )
        session = cache.get(graph)
    else:
        session = cache.get(session.graph, device=session.device,
                            config=session.config)
    plan = fault_plan if fault_plan is not None else default_chaos_plan(seed)
    queries = generate_queries(
        num_queries, session.num_nodes, seed=seed, deadline_s=deadline_s
    )

    batches, epoch_graphs = generate_mutations(
        session.graph, mutation_batches, ops_per_batch=mutation_ops,
        seed=seed + 4242,
    )
    epoch_digests = [graph_fingerprint(g)["digest"] for g in epoch_graphs]
    # Fault-free reference per (triple, epoch): which epoch a query is
    # answered on depends on barrier timing, so every epoch's answers
    # are precomputed and the response's own tag selects among them.
    reference: Dict[Tuple[str, int, str, int], Optional[str]] = {}
    for epoch, epoch_graph in enumerate(epoch_graphs):
        epoch_session = session if epoch == 0 else GraphSession(
            epoch_graph, device=session.device, config=session.config
        )
        for triple, sha in _reference_shas(epoch_session, queries).items():
            reference[triple + (epoch,)] = sha

    injector = FaultInjector(plan) if not plan.is_empty else None
    loop = ServeLoop(
        session,
        queue_capacity=queue_capacity,
        max_batch_rows=max_batch_rows,
        scheduler=scheduler,
        fault_injector=injector,
        breaker=CircuitBreaker(failure_threshold=3, cooldown_s=0.05),
        cache=cache,
        mutation_mode="lenient",
    )
    mutate_every = (
        max(1, num_queries // (mutation_batches + 1)) if batches else 0
    )
    next_batch = 0
    responses: List[dict] = []
    for i, query in enumerate(queries, start=1):
        loop.submit(query, line=i)
        if batches and next_batch < len(batches) and i % mutate_every == 0:
            loop.submit_mutation(batches[next_batch])
            next_batch += 1
        if i % pump_every == 0:
            loop.pump()
            responses.extend(loop.take_responses())
    while next_batch < len(batches):
        loop.submit_mutation(batches[next_batch])
        next_batch += 1
    loop.drain()
    responses.extend(loop.take_responses())
    serve_report = loop.finalize()

    report = ChaosReport(
        num_queries=num_queries,
        plan=plan.to_dict(),
        serve=serve_report,
        session=session,
        faults_injected=injector.num_injected if injector else 0,
        mutation_batches=len(batches),
        cache_patches=cache.patches,
        cache_evictions=cache.evictions,
    )

    # Dynamic invariants: every batch applied, every barrier's
    # compacted digest identical to the independently built epoch graph.
    if batches:
        if serve_report.graph_epoch != len(batches):
            report.violations.append(
                f"only {serve_report.graph_epoch} of {len(batches)} "
                "mutation batches reached an epoch"
            )
        for event in serve_report.mutation_events:
            if not event.get("ok"):
                report.violations.append(
                    f"mutation batch rejected: {event.get('error')}"
                )
                continue
            epoch = event["graph_epoch"]
            if event["new_digest"] != epoch_digests[epoch]:
                report.mutation_digest_mismatches += 1
                report.violations.append(
                    f"epoch {epoch} compacted digest "
                    f"{event['new_digest'][:12]}… != reference build "
                    f"{epoch_digests[epoch][:12]}…"
                )
        if cache.evictions:
            report.violations.append(
                f"mutations evicted {cache.evictions} cached sessions "
                "instead of patching in place"
            )

    # Invariant: exactly one response per submitted query.
    seen: Dict[int, int] = {}
    for doc in responses:
        seen[doc["seq"]] = seen.get(doc["seq"], 0) + 1
    for seq, count in sorted(seen.items()):
        if count > 1:
            report.duplicate_responses += count - 1
            report.violations.append(
                f"query seq {seq} answered {count} times"
            )
    for seq in range(1, num_queries + 1):
        if seq not in seen:
            report.missing_responses += 1
            report.violations.append(f"query seq {seq} never answered")

    # Invariant: delivered successes are bit-identical to fault-free —
    # on the graph epoch each response was answered against.
    by_seq = {doc["seq"]: doc for doc in responses}
    for i, query in enumerate(queries, start=1):
        doc = by_seq.get(i)
        if doc is None or not doc.get("ok"):
            continue
        epoch = doc.get("graph_epoch", 0)
        expected = reference.get(
            (query.algorithm, query.source, query.mode, epoch)
        )
        if doc.get("values_sha256") != expected:
            report.sha_mismatches += 1
            report.violations.append(
                f"query seq {i} ({query.algorithm} @ {query.source}, "
                f"{query.mode}, epoch {epoch}) answered sha "
                f"{doc.get('values_sha256')!r}, fault-free reference is "
                f"{expected!r}"
            )

    observer = current_observer()
    if observer is not None:
        observer.spans.add_span(
            "chaos_soak",
            sim_seconds=serve_report.total_sim_seconds,
            queries=num_queries,
            super_iterations=serve_report.super_iterations,
        )
    return report


# ----------------------------------------------------------------------
# Device-loss soak over the sharded multi-device driver
# ----------------------------------------------------------------------


def default_shard_chaos_plan(seed: int = 0) -> "FaultPlan":
    """A device-loss-heavy plan for the sharded soak: frequent enough
    that a short soak sees losses on several distinct devices, bounded
    so a single query cannot burn the whole restore budget."""
    return FaultPlan(
        seed=seed,
        device_loss_rate=0.08,
        launch_failure_rate=0.02,
        max_faults=1,
    )


@dataclass
class ShardChaosReport:
    """One sharded soak's verdict.

    The invariants extend the serve soak's three with *fault
    attribution*: every injected device fault must be attributed to
    exactly one device's fault domain (its ``device`` tag) and, for
    device losses, to the shards that were homed there — an unattributed
    fault means the recovery ladder acted on the wrong shard.
    """

    num_queries: int
    num_devices: int
    partition: str
    plan: dict
    #: per-query summaries: algorithm, source, sha parity, recovery rung
    queries: List[dict] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    faults_injected: int = 0
    device_losses: int = 0
    migrations: int = 0
    restores: int = 0
    degraded_queries: int = 0
    sha_mismatches: int = 0
    unattributed_faults: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    def result_dict(self) -> dict:
        return {
            "kind": "shard_chaos",
            "num_queries": self.num_queries,
            "num_devices": self.num_devices,
            "partition": self.partition,
            "fault_plan": self.plan,
            "queries": list(self.queries),
            "passed": self.passed,
            "violations": list(self.violations),
            "faults_injected": self.faults_injected,
            "device_losses": self.device_losses,
            "migrations": self.migrations,
            "restores": self.restores,
            "degraded_queries": self.degraded_queries,
            "sha_mismatches": self.sha_mismatches,
            "unattributed_faults": self.unattributed_faults,
        }


def run_shard_chaos(
    *,
    num_queries: int = 8,
    num_nodes: int = 512,
    num_devices: int = 4,
    seed: int = 0,
    partition: str = "contiguous",
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_every: int = 2,
    algorithms: Tuple[str, ...] = ("bfs", "sssp"),
    graph=None,
) -> ShardChaosReport:
    """Soak :func:`~repro.engine.shard.run_sharded` under seeded device
    loss and assert the sharded invariants:

    - **no crash** — every query returns a result, never an exception;
    - **exactly once** — one result per submitted query;
    - **bit identity** — each faulted N-device run's value SHA equals
      the fault-free 1-device run of the same query;
    - **attribution** — every injected fault names exactly one device
      fault domain, and every device loss maps to recovery events for
      the shards homed on that device (and no other device).
    """
    import dataclasses as _dc

    import numpy as np

    from repro.engine.shard import run_sharded

    if graph is None:
        graph = attach_uniform_weights(
            power_law_graph(num_nodes, seed=seed, name=f"shardchaos{num_nodes}"),
            seed=seed,
        )
    plan = fault_plan if fault_plan is not None else default_shard_chaos_plan(seed)
    rng = np.random.default_rng(seed)

    report = ShardChaosReport(
        num_queries=num_queries,
        num_devices=num_devices,
        partition=partition,
        plan=plan.to_dict(),
    )

    for i in range(num_queries):
        algorithm = str(rng.choice(algorithms))
        source = int(rng.integers(0, graph.num_nodes))
        reference = run_sharded(
            graph, source, algorithm=algorithm, num_devices=1
        )
        entry = {
            "query": i,
            "algorithm": algorithm,
            "source": source,
            "reference_sha256": reference.values_sha256,
        }
        try:
            result = run_sharded(
                graph,
                source,
                algorithm=algorithm,
                num_devices=num_devices,
                partition=partition,
                fault_plan=_dc.replace(plan, seed=plan.seed + 7919 * (i + 1)),
                checkpoint_every=checkpoint_every,
            )
        except Exception as exc:  # noqa: BLE001 — a crash IS the violation
            report.violations.append(
                f"query {i} ({algorithm} @ {source}) crashed: "
                f"{type(exc).__name__}: {exc}"
            )
            entry["crashed"] = f"{type(exc).__name__}: {exc}"
            report.queries.append(entry)
            continue

        entry.update(
            values_sha256=result.values_sha256,
            recovery_rung=result.recovery_rung,
            device_losses=result.device_losses,
            migrations=result.migrations,
            faults=len(result.faults),
            degraded=result.degraded,
        )
        report.queries.append(entry)
        report.faults_injected += len(result.faults)
        report.device_losses += result.device_losses
        report.migrations += result.migrations
        report.restores += result.restores
        report.degraded_queries += int(result.degraded)

        if result.values_sha256 != reference.values_sha256:
            report.sha_mismatches += 1
            report.violations.append(
                f"query {i} ({algorithm} @ {source}) sharded sha "
                f"{result.values_sha256[:12]}… != 1-device reference "
                f"{reference.values_sha256[:12]}…"
            )

        # Attribution: every injected fault carries exactly one device
        # tag, and every device-loss fault maps to migration events for
        # shards homed on that device only.
        loss_events: Dict[int, set] = {}
        for event in result.recovery_events:
            if event.fault_kind == "device_loss" and event.device_index >= 0:
                loss_events.setdefault(event.device_index, set()).add(
                    event.shard_index
                )
        for fault in result.faults:
            dev = fault.get("device", -1)
            if dev < 0 or dev >= num_devices:
                report.unattributed_faults += 1
                report.violations.append(
                    f"query {i}: fault #{fault.get('sequence')} "
                    f"({fault.get('kind')}) has no device fault domain "
                    f"(device={dev})"
                )
                continue
            if fault.get("kind") == "device_loss" and not result.degraded:
                shards = loss_events.get(dev, set())
                if not shards:
                    report.unattributed_faults += 1
                    report.violations.append(
                        f"query {i}: device_loss on device {dev} produced "
                        f"no recovery events for any shard homed there"
                    )

    observer = current_observer()
    if observer is not None:
        observer.spans.add_span(
            "shard_chaos_soak",
            queries=num_queries,
            devices=num_devices,
            device_losses=report.device_losses,
        )
    return report
