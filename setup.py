"""Setup shim so editable installs work on environments without the
``wheel`` package (offline legacy path)."""
from setuptools import setup

setup()
