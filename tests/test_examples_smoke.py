"""Smoke tests: every shipped example must run end-to-end.

Each example module is imported and its ``main`` invoked at a tiny scale
with stdout captured, so examples cannot silently rot as the library
evolves.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "BFS levels" in out
        assert "adaptive" in out

    def test_road_navigation(self, capsys):
        load_example("road_navigation").main(scale=0.01)
        out = capsys.readouterr().out
        assert "serial CPU Dijkstra" in out
        assert "adaptive" in out
        assert "longest shortest route" in out

    def test_social_reachability(self, capsys):
        load_example("social_reachability").main(scale=0.005)
        out = capsys.readouterr().out
        assert "degrees of separation" in out
        assert "BFS comparison" in out

    def test_webgraph_exploration(self, capsys):
        load_example("webgraph_exploration").main(scale=0.01)
        out = capsys.readouterr().out
        assert "outdegree distribution" in out
        assert "SIMT" in out

    def test_device_comparison(self, capsys):
        load_example("device_comparison").main()
        out = capsys.readouterr().out
        assert "Tesla C2070" in out
        assert "Quadro" in out

    def test_component_analysis(self, capsys):
        mod = load_example("component_analysis")
        # The example hardcodes its scales; run its two halves directly.
        mod.analyze_components()
        mod.analyze_road_routing()
        out = capsys.readouterr().out
        assert "components" in out
        assert "hybrid" in out

    def test_algorithm_zoo(self, capsys):
        load_example("algorithm_zoo").main(scale=0.005)
        out = capsys.readouterr().out
        assert "five algorithms" in out
        assert "k-core" in out
        assert "working-set trajectories" in out
