"""Tests for the push-PageRank extension (CPU baseline, GPU kernels,
adaptive runtime)."""

import numpy as np
import pytest

from repro import Graph, adaptive_pagerank, run_pagerank
from repro.cpu import cpu_pagerank
from repro.errors import GraphError, KernelError
from repro.graph.generators import (
    balanced_tree,
    chain_graph,
    erdos_renyi_graph,
    power_law_graph,
    star_graph,
)
from repro.kernels import unordered_variants


class TestCpuPagerank:
    def test_engines_agree(self, random_graph):
        fifo = cpu_pagerank(random_graph, method="fifo")
        fast = cpu_pagerank(random_graph, method="fast")
        # Both stop once every residual is below tolerance, so they agree
        # up to the un-pushed residual mass, O(n x tolerance).
        slack = random_graph.num_nodes * 1e-6
        assert np.abs(fifo.ranks - fast.ranks).max() < slack
        assert abs(fifo.total_mass - fast.total_mass) < slack

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graph.builder import to_networkx

        g = balanced_tree(3, 4)  # symmetric: no dangling nodes
        r = cpu_pagerank(g, tolerance=1e-10)
        nx_pr = nx.pagerank(to_networkx(g), alpha=0.85, tol=1e-10, max_iter=1000)
        ours = r.ranks / r.ranks.sum()
        theirs = np.array([nx_pr[i] for i in range(g.num_nodes)])
        assert np.abs(ours - theirs).max() < 1e-6

    def test_mass_close_to_one(self):
        g = chain_graph(50)
        r = cpu_pagerank(g, tolerance=1e-9)
        assert r.total_mass == pytest.approx(1.0, abs=1e-5)

    def test_hub_ranks_highest(self):
        g = star_graph(100)
        r = cpu_pagerank(g, tolerance=1e-9)
        assert int(np.argmax(r.ranks)) == 0

    def test_rejects_bad_params(self, random_graph):
        with pytest.raises(GraphError):
            cpu_pagerank(random_graph, damping=1.5)
        with pytest.raises(GraphError):
            cpu_pagerank(random_graph, tolerance=0.0)

    def test_unknown_method(self, random_graph):
        with pytest.raises(ValueError):
            cpu_pagerank(random_graph, method="quantum")

    def test_operation_counts(self, random_graph):
        r = cpu_pagerank(random_graph)
        assert r.pushes >= random_graph.num_nodes  # everyone starts active
        assert r.edges_pushed > 0
        assert r.seconds > 0


class TestGpuPagerank:
    @pytest.mark.parametrize("code", [v.code for v in unordered_variants()])
    def test_all_variants_match_cpu(self, code, random_graph):
        gpu = run_pagerank(random_graph, code)
        cpu = cpu_pagerank(random_graph, method="fast")
        assert np.abs(gpu.values - cpu.ranks).max() < 1e-12

    def test_workset_starts_full_and_drains(self):
        g = power_law_graph(5000, alpha=2.0, max_degree=100, seed=7)
        r = run_pagerank(g, "U_T_BM")
        curve = r.workset_curve()
        assert curve[0] == g.num_nodes
        assert curve[-1] < curve[0]

    def test_tolerance_controls_iterations(self, random_graph):
        loose = run_pagerank(random_graph, "U_B_QU", tolerance=1e-4)
        tight = run_pagerank(random_graph, "U_B_QU", tolerance=1e-8)
        assert tight.num_iterations >= loose.num_iterations
        assert tight.values.sum() >= loose.values.sum()

    def test_rejects_bad_params(self, random_graph):
        with pytest.raises(KernelError):
            run_pagerank(random_graph, "U_T_BM", damping=0.0)
        with pytest.raises(KernelError):
            run_pagerank(random_graph, "U_T_BM", tolerance=-1)

    def test_max_iterations(self, random_graph):
        with pytest.raises(KernelError, match="exceeded"):
            run_pagerank(random_graph, "U_T_BM", tolerance=1e-12, max_iterations=2)

    def test_algorithm_tag(self, random_graph):
        r = run_pagerank(random_graph, "U_T_QU")
        assert r.algorithm == "pagerank"


class TestAdaptivePagerank:
    def test_matches_static(self):
        g = power_law_graph(20_000, alpha=2.0, max_degree=300, seed=8)
        ad = adaptive_pagerank(g)
        st = run_pagerank(g, "U_T_BM")
        assert np.abs(ad.values - st.values).max() < 1e-12

    def test_starts_in_bitmap_region(self):
        g = power_law_graph(50_000, alpha=2.0, max_degree=300, seed=9)
        ad = adaptive_pagerank(g)
        assert ad.traversal.iterations[0].variant.endswith("BM")
        assert ad.num_switches >= 1  # drains into the queue region

    def test_graph_api(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)], num_nodes=3)
        r = g.pagerank(tolerance=1e-9)
        # A 3-cycle is symmetric: equal ranks.
        assert np.allclose(r.values, r.values[0])

    def test_graph_api_static_mode(self):
        g = Graph.from_edges([(0, 1), (1, 0)], num_nodes=2)
        r = g.pagerank(mode="U_B_QU")
        assert r.policy_name == "U_B_QU"


class TestObservedPagerank:
    def test_run_pagerank_accepts_observe(self):
        from repro.obs import Observer

        g = erdos_renyi_graph(800, 4000, seed=3)
        observer = Observer()
        result = run_pagerank(g, "U_B_QU", observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["frame.iterations"]["value"] == result.num_iterations
        assert snap["gpusim.kernel_launches"]["value"] > 0
        names = [s.name for s in observer.spans.spans]
        assert names.count("iteration") == result.num_iterations

    def test_observation_does_not_change_result(self):
        from repro.obs import Observer

        g = erdos_renyi_graph(800, 4000, seed=3)
        plain = run_pagerank(g, "U_T_BM")
        observed = run_pagerank(g, "U_T_BM", observe=Observer())
        assert np.array_equal(plain.values, observed.values)
        assert plain.total_seconds == observed.total_seconds
