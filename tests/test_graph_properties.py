"""Tests for repro.graph.properties."""

import numpy as np
import pytest

from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.generators import balanced_tree, chain_graph, star_graph
from repro.graph.properties import (
    _ragged_gather_indices,
    bfs_levels,
    characterize,
    is_symmetric,
    largest_out_component_node,
    out_degree_histogram,
    pseudo_diameter,
    reachable_count,
)


class TestRaggedGather:
    def test_basic(self):
        idx = _ragged_gather_indices(np.array([0, 5]), np.array([2, 7]))
        assert idx.tolist() == [0, 1, 5, 6]

    def test_zero_length_segments(self):
        idx = _ragged_gather_indices(np.array([0, 3, 3, 8]), np.array([2, 3, 3, 9]))
        assert idx.tolist() == [0, 1, 8]

    def test_all_empty(self):
        idx = _ragged_gather_indices(np.array([4, 4]), np.array([4, 4]))
        assert idx.size == 0

    def test_trailing_zero_segment(self):
        # Regression: a trailing zero-length segment used to index out of
        # bounds in the difference-encoding.
        idx = _ragged_gather_indices(np.array([0, 2]), np.array([2, 2]))
        assert idx.tolist() == [0, 1]

    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        starts = rng.integers(0, 50, size=20)
        ends = starts + rng.integers(0, 6, size=20)
        expected = np.concatenate(
            [np.arange(s, e) for s, e in zip(starts, ends)] or [np.empty(0, int)]
        )
        assert _ragged_gather_indices(starts, ends).tolist() == expected.tolist()


class TestBfsLevels:
    def test_chain(self):
        levels = bfs_levels(chain_graph(6), 0)
        assert levels.tolist() == [0, 1, 2, 3, 4, 5]

    def test_from_middle(self):
        levels = bfs_levels(chain_graph(5), 2)
        assert levels.tolist() == [2, 1, 0, 1, 2]

    def test_unreachable(self, tiny_graph):
        levels = bfs_levels(tiny_graph, 3)  # 3 -> 4 only
        assert levels[3] == 0 and levels[4] == 1
        assert (levels[[0, 1, 2]] == -1).all()

    def test_isolated_source(self):
        g = CSRGraph.empty(3)
        levels = bfs_levels(g, 1)
        assert levels.tolist() == [-1, 0, -1]


class TestReachability:
    def test_reachable_count(self, tiny_graph):
        assert reachable_count(tiny_graph, 0) == 5
        assert reachable_count(tiny_graph, 4) == 1

    def test_largest_component_node(self):
        # Two components: a big star (0..49) and an isolated pair.
        g = from_edge_list(
            [0] * 49 + [50], list(range(1, 50)) + [51], num_nodes=52, symmetric=True
        )
        node = largest_out_component_node(g, seed=0)
        assert reachable_count(g, node) == 50


class TestPseudoDiameter:
    def test_chain_exact(self):
        assert pseudo_diameter(chain_graph(30), seed=0) == 29

    def test_star_small(self):
        assert pseudo_diameter(star_graph(30), seed=0) == 2

    def test_tree(self):
        assert pseudo_diameter(balanced_tree(2, 4), seed=0) == 8

    def test_empty(self):
        assert pseudo_diameter(CSRGraph.empty(0)) == 0


class TestSymmetry:
    def test_symmetric(self):
        assert is_symmetric(chain_graph(5))

    def test_directed(self, tiny_graph):
        assert not is_symmetric(tiny_graph)


class TestCharacterize:
    def test_table1_row(self, tiny_graph):
        c = characterize(tiny_graph)
        assert c.num_nodes == 5
        assert c.num_edges == 6
        assert c.min_out_degree == 0
        assert c.max_out_degree == 2
        assert c.avg_out_degree == pytest.approx(1.2)
        assert c.pseudo_diameter is None

    def test_with_diameter(self):
        c = characterize(chain_graph(10), estimate_diameter=True, seed=0)
        assert c.pseudo_diameter == 9

    def test_empty_graph(self):
        c = characterize(CSRGraph.empty(0))
        assert c.num_nodes == 0

    def test_table_row_shape(self, tiny_graph):
        row = characterize(tiny_graph).table_row()
        assert len(row) == 6
        assert row[0] == "tiny"


class TestDegreeHistogram:
    def test_total_matches_nodes(self, skewed_graph):
        h = out_degree_histogram(skewed_graph)
        assert h.total == skewed_graph.num_nodes

    def test_star_concentration(self):
        h = out_degree_histogram(star_graph(100))
        # 99 leaves with degree 1 dominate.
        assert max(h.fractions) > 0.9
