"""Integration: the paper's qualitative claims must hold on the simulator
(small scales; the benchmarks reproduce the full tables).

Each test is one claim from the evaluation section:

1. Ordered and unordered BFS perform similarly (Section VII.A).
2. Unordered SSSP is significantly faster than ordered SSSP.
3. The best static variant is dataset-dependent (no single winner).
4. The GPU loses to the CPU on the road network's BFS.
5. B_BM is competitive on CiteSeer but the worst variant elsewhere.
6. BFS processes more nodes/second than SSSP (Figure 12).
7. The working set ramps up then drains (Figure 2).
8. The adaptive runtime is robust: never far behind the best static.
"""

import numpy as np
import pytest

from repro.core import adaptive_sssp, run_static
from repro.cpu import cpu_bfs, cpu_dijkstra
from repro.graph.datasets import make_dataset
from repro.graph.properties import largest_out_component_node
from repro.kernels import run_bfs, run_sssp, unordered_variants


@pytest.fixture(scope="module")
def workloads():
    """Scaled dataset analogues with chosen sources (module-cached)."""
    out = {}
    for key, scale in [
        ("co-road", 0.03),
        ("citeseer", 0.03),
        ("amazon", 0.03),
        ("google", 0.03),
    ]:
        g = make_dataset(key, scale=scale, weighted=True, seed=1)
        src = largest_out_component_node(g, seed=0)
        out[key] = (g, src)
    return out


class TestOrderingClaims:
    def test_bfs_ordered_unordered_similar(self, workloads):
        g, src = workloads["amazon"]
        o = run_bfs(g, src, "O_T_BM").total_seconds
        u = run_bfs(g, src, "U_T_BM").total_seconds
        assert 0.7 < o / u < 1.4

    def test_sssp_unordered_much_faster(self, workloads):
        g, src = workloads["google"]
        o = run_sssp(g, src, "O_T_QU").total_seconds
        u = run_sssp(g, src, "U_T_QU").total_seconds
        assert u < o / 3


class TestStaticVariantClaims:
    def test_no_universal_winner(self, workloads):
        winners = set()
        for key in ("co-road", "citeseer", "amazon"):
            g, src = workloads[key]
            times = {
                v.code: run_sssp(g, src, v).total_seconds
                for v in unordered_variants()
            }
            winners.add(min(times, key=times.get))
        assert len(winners) >= 2, f"single universal winner {winners}"

    def test_gpu_loses_on_road_bfs(self, workloads):
        g, src = workloads["co-road"]
        cpu = cpu_bfs(g, src).seconds
        best_gpu = min(
            run_bfs(g, src, v).total_seconds for v in unordered_variants()
        )
        assert best_gpu > cpu  # speedup < 1

    def test_gpu_wins_on_citeseer(self, workloads):
        g, src = workloads["citeseer"]
        cpu = cpu_bfs(g, src).seconds
        best_gpu = min(
            run_bfs(g, src, v).total_seconds for v in unordered_variants()
        )
        assert best_gpu < cpu

    def test_b_bm_bad_outside_citeseer(self, workloads):
        """U_B_BM: strong on CiteSeer, the worst unordered variant on
        low-degree graphs (Section VII.A)."""
        for key in ("co-road", "google"):
            g, src = workloads[key]
            times = {
                v.code: run_sssp(g, src, v).total_seconds
                for v in unordered_variants()
            }
            assert max(times, key=times.get) == "U_B_BM", key

    def test_citeseer_prefers_block_mapping(self, workloads):
        g, src = workloads["citeseer"]
        t = run_sssp(g, src, "U_T_BM").total_seconds
        b = run_sssp(g, src, "U_B_BM").total_seconds
        assert b < t


class TestThroughputClaims:
    def test_bfs_faster_than_sssp(self, workloads):
        g, src = workloads["citeseer"]
        bfs_speed = run_bfs(g, src, "U_B_QU").nodes_per_second()
        sssp_speed = run_sssp(g, src, "U_B_QU").nodes_per_second()
        assert bfs_speed > sssp_speed


class TestWorksetShape:
    def test_ramp_and_drain(self, workloads):
        """Figure 2: the working set grows from 1, peaks, then shrinks."""
        g, src = workloads["amazon"]
        curve = run_sssp(g, src, "U_T_BM").workset_curve()
        peak = int(np.argmax(curve))
        assert curve[0] == 1
        assert curve[peak] > 100
        assert 0 < peak < len(curve) - 1
        assert curve[-1] < curve[peak] / 10

    def test_sssp_worksets_larger_than_bfs(self, workloads):
        """Section III.B: SSSP working sets exceed BFS's (re-relaxation)."""
        g, src = workloads["google"]
        bfs_total = run_bfs(g, src, "U_T_BM").workset_curve().sum()
        sssp_total = run_sssp(g, src, "U_T_BM").workset_curve().sum()
        assert sssp_total > bfs_total


class TestAdaptiveClaims:
    def test_adaptive_close_to_best_everywhere(self, workloads):
        """Robustness: within 1.3x of the best static on every dataset
        (the paper's adaptive *beats* the best static on most)."""
        for key, (g, src) in workloads.items():
            best = min(
                run_static(g, src, "sssp", v).total_seconds
                for v in unordered_variants()
            )
            ad = adaptive_sssp(g, src).total_seconds
            assert ad <= 1.3 * best, key

    def test_adaptive_beats_worst_static_by_far(self, workloads):
        for key, (g, src) in workloads.items():
            worst = max(
                run_static(g, src, "sssp", v).total_seconds
                for v in unordered_variants()
            )
            ad = adaptive_sssp(g, src).total_seconds
            assert ad < worst, key

    def test_adaptive_beats_best_static_somewhere(self, workloads):
        wins = 0
        for key, (g, src) in workloads.items():
            best = min(
                run_static(g, src, "sssp", v).total_seconds
                for v in unordered_variants()
            )
            if adaptive_sssp(g, src).total_seconds < best:
                wins += 1
        assert wins >= 1
