"""Hardened-ingestion tests: strict/lenient modes, resource limits, and
property-based corruption round-trips over all four on-disk formats.

The property tests follow the satellite's recipe: write a random graph,
corrupt exactly one line, and assert the reader fails fast with a
diagnostic instead of silently loading a different graph.
"""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphFormatError, IngestLimitError
from repro.graph.builder import from_edge_list
from repro.graph.io import (
    IngestLimits,
    IngestReport,
    load_graph,
    read_dimacs,
    read_matrix_market,
    read_metis,
    read_snap_edgelist,
    write_dimacs,
    write_matrix_market,
    write_metis,
    write_snap_edgelist,
)

# -- strategies --------------------------------------------------------


@st.composite
def simple_graphs(draw, max_nodes=10, weighted=False):
    """A small graph with unique, loop-free edges (writer-canonical)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=1,
            max_size=min(30, n * (n - 1)),
        )
    )
    src = [u for u, _ in sorted(pairs)]
    dst = [v for _, v in sorted(pairs)]
    weights = None
    if weighted:
        weights = draw(
            st.lists(
                st.integers(1, 9), min_size=len(src), max_size=len(src)
            )
        )
    return from_edge_list(src, dst, weights, num_nodes=n, name="prop")


def _roundtrip(graph, writer, reader, suffix, corrupt=None, **read_kwargs):
    """Write *graph*, optionally corrupt one line, then read it back."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "g" + suffix)
        writer(graph, path)
        if corrupt is not None:
            with open(path, encoding="utf-8") as fh:
                lines = fh.readlines()
            lines = corrupt(lines)
            with open(path, "w", encoding="utf-8") as fh:
                fh.writelines(lines)
        return reader(path, **read_kwargs)


def _drop_last_line(lines):
    return lines[:-1]


FORMATS = [
    (write_dimacs, read_dimacs, ".gr"),
    (write_snap_edgelist, read_snap_edgelist, ".txt"),
    (write_matrix_market, read_matrix_market, ".mtx"),
]


# -- properties --------------------------------------------------------


class TestCorruptionRoundtrip:
    @pytest.mark.parametrize("writer, reader, suffix", FORMATS)
    @given(graph=simple_graphs())
    @settings(max_examples=25, deadline=None)
    def test_clean_roundtrip_preserves_topology(self, writer, reader, suffix, graph):
        # SNAP edge lists cannot represent trailing isolated nodes
        kwargs = (
            {"num_nodes": graph.num_nodes}
            if reader is read_snap_edgelist
            else {}
        )
        back = _roundtrip(graph, writer, reader, suffix, **kwargs)
        assert back.num_nodes == graph.num_nodes
        assert np.array_equal(back.row_offsets, graph.row_offsets)
        assert np.array_equal(back.col_indices, graph.col_indices)

    @pytest.mark.parametrize("writer, reader, suffix", FORMATS)
    @given(graph=simple_graphs())
    @settings(max_examples=25, deadline=None)
    def test_truncated_file_fails_fast(self, writer, reader, suffix, graph):
        # Dropping the last edge line leaves the declared count stale:
        # every reader must notice instead of loading a smaller graph.
        with pytest.raises(GraphFormatError, match="truncated|adjacency"):
            _roundtrip(graph, writer, reader, suffix, corrupt=_drop_last_line)

    @pytest.mark.parametrize("writer, reader, suffix", FORMATS)
    @given(graph=simple_graphs(), lineno=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_garbled_edge_line_names_location(
        self, writer, reader, suffix, graph, lineno
    ):
        def garble(lines):
            # pick an edge-bearing line (the last one is always an edge)
            idx = len(lines) - 1 - (lineno % max(1, graph.num_edges))
            lines[idx] = "z z z!\n"
            return lines

        with pytest.raises(GraphFormatError) as exc:
            _roundtrip(graph, writer, reader, suffix, corrupt=garble)
        assert ":" in str(exc.value)  # file:line diagnostic

    @given(graph=simple_graphs())
    @settings(max_examples=25, deadline=None)
    def test_metis_roundtrip_and_truncation(self, graph):
        # METIS is undirected: symmetrize (writer requires it).
        src = np.repeat(np.arange(graph.num_nodes), graph.out_degrees)
        sym = from_edge_list(
            src,
            graph.col_indices,
            num_nodes=graph.num_nodes,
            symmetric=True,
            dedupe=True,
            name="prop",
        )
        back = _roundtrip(sym, write_metis, read_metis, ".graph")
        assert np.array_equal(back.row_offsets, sym.row_offsets)
        assert np.array_equal(back.col_indices, sym.col_indices)
        with pytest.raises(GraphFormatError):
            _roundtrip(
                sym, write_metis, read_metis, ".graph", corrupt=_drop_last_line
            )

    @given(graph=simple_graphs(weighted=True))
    @settings(max_examples=25, deadline=None)
    def test_nan_weight_rejected_in_every_mode(self, graph):
        def poison(lines):
            parts = lines[-1].split()
            parts[-1] = "nan"
            lines[-1] = " ".join(parts) + "\n"
            return lines

        for mode in (None, "strict", "lenient"):
            with pytest.raises(GraphFormatError, match="weight"):
                _roundtrip(
                    graph, write_dimacs, read_dimacs, ".gr",
                    corrupt=poison, mode=mode,
                )


# -- strict / lenient / limits ----------------------------------------


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestStrictMode:
    def test_self_loop_names_file_and_line(self, tmp_path):
        path = _write(
            tmp_path, "loop.gr",
            "p sp 3 2\na 1 2 1\na 2 2 1\n",
        )
        with pytest.raises(GraphFormatError, match=r"loop\.gr:3: self-loop"):
            read_dimacs(path, mode="strict")

    def test_duplicate_edge_rejected(self, tmp_path):
        path = _write(
            tmp_path, "dup.txt",
            "# Nodes: 3 Edges: 3\n0\t1\n0\t1\n1\t2\n",
        )
        with pytest.raises(GraphFormatError, match="duplicate edge"):
            read_snap_edgelist(path, mode="strict")

    def test_dangling_id_rejected(self, tmp_path):
        path = _write(tmp_path, "dangle.gr", "p sp 2 1\na 1 5 1\n")
        with pytest.raises(GraphFormatError, match="out of range"):
            read_dimacs(path, mode="strict")

    def test_clean_file_loads(self, tmp_path):
        path = _write(tmp_path, "ok.gr", "p sp 3 2\na 1 2 1\na 2 3 2\n")
        g = read_dimacs(path, mode="strict")
        assert g.num_edges == 2


class TestLenientMode:
    def test_quarantines_and_reports(self, tmp_path):
        path = _write(
            tmp_path, "messy.gr",
            "p sp 3 5\n"
            "a 1 2 1\n"      # good
            "a 2 2 1\n"      # self-loop
            "a 1 2 1\n"      # duplicate
            "a 1 9 1\n"      # dangling
            "a 2 3 1\n",     # good
        )
        report = IngestReport()
        g = read_dimacs(path, mode="lenient", report=report)
        assert g.num_edges == 2
        assert report.self_loops_dropped == 1
        assert report.duplicates_collapsed == 1
        assert report.dangling_dropped == 1
        assert report.repairs == 3
        assert report.parsed_edges == 5
        assert report.notes == []

    def test_count_mismatch_becomes_note(self, tmp_path):
        path = _write(tmp_path, "short.gr", "p sp 3 4\na 1 2 1\na 2 3 1\n")
        report = IngestReport()
        g = read_dimacs(path, mode="lenient", report=report)
        assert g.num_edges == 2
        assert any("truncated" in note for note in report.notes)


class TestIngestLimits:
    def test_max_edges(self, tmp_path):
        body = "".join(f"0\t{i}\n" for i in range(1, 21))
        path = _write(tmp_path, "big.txt", body)
        with pytest.raises(IngestLimitError, match="more than 5 edges"):
            read_snap_edgelist(path, limits=IngestLimits(max_edges=5))

    def test_max_nodes(self, tmp_path):
        path = _write(tmp_path, "wide.gr", "p sp 100 1\na 1 2 1\n")
        with pytest.raises(IngestLimitError, match="nodes"):
            read_dimacs(path, limits=IngestLimits(max_nodes=10))

    def test_max_bytes(self, tmp_path):
        body = "# padding comment to blow the byte limit\n" * 50
        path = _write(tmp_path, "fat.txt", body + "0\t1\n")
        with pytest.raises(IngestLimitError, match="bytes"):
            read_snap_edgelist(path, limits=IngestLimits(max_bytes=100))

    def test_under_limits_loads(self, tmp_path):
        path = _write(tmp_path, "ok.txt", "0\t1\n1\t2\n")
        g = read_snap_edgelist(
            path, limits=IngestLimits(max_nodes=10, max_edges=10)
        )
        assert g.num_edges == 2

    def test_limits_validate(self):
        with pytest.raises(Exception):
            IngestLimits(max_edges=0)


class TestLoadGraphForwarding:
    def test_mode_and_limits_forwarded(self, tmp_path):
        path = _write(tmp_path, "loop.gr", "p sp 3 2\na 1 2 1\na 2 2 1\n")
        with pytest.raises(GraphFormatError, match="self-loop"):
            load_graph(path, mode="strict")
        report = IngestReport()
        g = load_graph(path, mode="lenient", report=report)
        assert g.num_edges == 1
        assert report.repairs == 1
