"""Tests for repro.gpusim.memory, repro.gpusim.warp, repro.gpusim.smscheduler
and repro.gpusim.atomics."""

import numpy as np
import pytest

from repro.gpusim.atomics import multi_address_cycles, same_address_cycles
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.memory import (
    bandwidth_cycles,
    coalesced_transactions,
    scattered_transactions,
    segment_stream_transactions,
    strided_transactions,
)
from repro.gpusim.smscheduler import makespan_cycles, wave_count
from repro.gpusim.warp import profile_warps, warp_reduce


class TestMemoryModel:
    def test_coalesced_full_warp(self):
        # 32 x 4-byte accesses = 128 bytes = 1 transaction.
        assert coalesced_transactions(32, 4, TESLA_C2070) == 1

    def test_coalesced_rounds_up(self):
        assert coalesced_transactions(33, 4, TESLA_C2070) == 2

    def test_scattered_one_each(self):
        assert scattered_transactions(100) == 100

    def test_strided_wide(self):
        # stride >= transaction size: no coalescing at all.
        assert strided_transactions(10, 256, 4, TESLA_C2070) == 10

    def test_strided_narrow(self):
        # stride 32 bytes: 4 accesses share a 128-byte transaction.
        assert strided_transactions(8, 32, 4, TESLA_C2070) == 2

    def test_segment_stream(self):
        # two segments of 32 ints each: 1 transaction + misalignment each
        t = segment_stream_transactions([32, 32], 4, TESLA_C2070)
        assert t == pytest.approx(3.0)  # 2 x (1 + 0.5)

    def test_segment_stream_skips_empty(self):
        assert segment_stream_transactions([0, 0], 4, TESLA_C2070) == 0.0

    def test_bandwidth_cycles(self):
        # 1 transaction = 128 bytes ~ 1.02 cycles at 125 B/cycle.
        assert bandwidth_cycles(1, TESLA_C2070) == pytest.approx(
            128 / TESLA_C2070.bytes_per_cycle
        )


class TestWarpModel:
    def test_divergence_max(self):
        # One heavy lane dominates its warp.
        costs = np.ones(32)
        costs[5] = 100
        assert warp_reduce(costs, how="max").tolist() == [100.0]

    def test_multiple_warps(self):
        costs = np.concatenate([np.full(32, 2.0), np.full(32, 7.0)])
        assert warp_reduce(costs, how="max").tolist() == [2.0, 7.0]

    def test_partial_warp_padded(self):
        out = warp_reduce(np.full(40, 3.0), how="max")
        assert len(out) == 2

    def test_sum_reduction(self):
        assert warp_reduce([1, 2, 3], how="sum").tolist() == [6.0]

    def test_unknown_how(self):
        with pytest.raises(ValueError):
            warp_reduce([1.0], how="median")

    def test_profile_no_divergence(self):
        p = profile_warps(np.full(64, 5.0))
        assert p.simt_efficiency == pytest.approx(1.0)
        assert p.issue_cycles == 10.0
        assert p.num_warps == 2

    def test_profile_heavy_divergence(self):
        costs = np.ones(32)
        costs[0] = 320
        p = profile_warps(costs)
        assert p.issue_cycles == 320
        assert p.simt_efficiency < 0.05

    def test_profile_empty(self):
        p = profile_warps(np.empty(0))
        assert p.num_warps == 0
        assert p.simt_efficiency == 1.0


class TestScheduler:
    def test_makespan_ideal(self):
        # 1400 equal blocks spread over 14 SMs.
        blocks = np.full(1400, 10.0)
        m = makespan_cycles(blocks, TESLA_C2070)
        assert m == pytest.approx(1400 * 10 / 14 * 1.05)

    def test_makespan_straggler(self):
        blocks = np.array([10_000.0] + [1.0] * 10)
        assert makespan_cycles(blocks, TESLA_C2070) == 10_000.0

    def test_makespan_tuple_form(self):
        assert makespan_cycles((140.0, 5.0), TESLA_C2070) == pytest.approx(10.5)

    def test_makespan_empty(self):
        assert makespan_cycles(np.empty(0), TESLA_C2070) == 0.0

    def test_wave_count(self):
        assert wave_count(0, 8, TESLA_C2070) == 0
        assert wave_count(1, 8, TESLA_C2070) == 1
        assert wave_count(14 * 8 + 1, 8, TESLA_C2070) == 2


class TestAtomics:
    def test_same_address_linear(self):
        assert same_address_cycles(100, TESLA_C2070, cycles_per_op=3.0) == 300.0

    def test_multi_address_spreads(self):
        hot = multi_address_cycles(1000, 1, TESLA_C2070)
        spread = multi_address_cycles(1000, 1000, TESLA_C2070)
        assert spread < hot / 10

    def test_multi_address_zero_ops(self):
        assert multi_address_cycles(0, 5, TESLA_C2070) == 0.0
