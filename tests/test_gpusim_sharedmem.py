"""Tests for the shared-memory bank-conflict model."""

import pytest

from repro.gpusim.device import TESLA_C2070
from repro.gpusim.kernel import CostModel
from repro.gpusim.reduction import reduction_tallies
from repro.gpusim.sharedmem import (
    conflict_degree,
    reduction_step_cycles,
    shared_access_cycles,
)


class TestConflictDegree:
    def test_unit_stride_conflict_free(self):
        assert conflict_degree(1) == 1

    def test_odd_strides_conflict_free(self):
        for stride in (3, 5, 7, 17, 31):
            assert conflict_degree(stride) == 1, stride

    def test_stride_two_gives_two_way(self):
        assert conflict_degree(2) == 2

    def test_stride_bank_count_worst_case(self):
        assert conflict_degree(32) == 32

    def test_powers_of_two_double(self):
        assert [conflict_degree(2**k) for k in range(6)] == [1, 2, 4, 8, 16, 32]

    def test_broadcast_free(self):
        assert conflict_degree(0) == 1

    def test_partial_warp(self):
        # 8 active lanes at stride 32 serialize at most 8-way.
        assert conflict_degree(32, active_lanes=8) == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            conflict_degree(-1)


class TestSharedAccessCycles:
    def test_scales_with_conflicts(self):
        free = shared_access_cycles(100, 1, TESLA_C2070)
        conflicted = shared_access_cycles(100, 32, TESLA_C2070)
        assert conflicted == 32 * free

    def test_zero_accesses(self):
        assert shared_access_cycles(0, 1, TESLA_C2070) == 0.0


class TestReductionAddressing:
    def test_sequential_steps_flat(self):
        costs = [reduction_step_cycles(s, sequential_addressing=True) for s in range(8)]
        assert len(set(costs)) == 1

    def test_interleaved_steps_grow(self):
        costs = [
            reduction_step_cycles(s, sequential_addressing=False) for s in range(5)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            reduction_step_cycles(-1, sequential_addressing=True)

    def test_naive_reduction_costs_more(self):
        """The classic CUDA optimization: sequential addressing removes
        the bank conflicts of the interleaved tree."""
        model = CostModel(TESLA_C2070)
        good = sum(
            model.price(t).seconds
            for t in reduction_tallies(500_000, TESLA_C2070)
        )
        naive = sum(
            model.price(t).seconds
            for t in reduction_tallies(
                500_000, TESLA_C2070, sequential_addressing=False
            )
        )
        assert naive > 1.5 * good
