"""Property-based tests on the cost model: prices must behave like
physical quantities (non-negative, monotone in work, additive where the
hardware is additive)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpusim.device import TESLA_C2070
from repro.gpusim.kernel import CostModel, KernelTally
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.transfer import transfer_seconds
from repro.kernels import costs as kcosts
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Mapping, WorksetRepr
from repro.kernels.workset import workset_gen_tallies

MODEL = CostModel(TESLA_C2070)


@st.composite
def tallies(draw):
    blocks = draw(st.integers(1, 10_000))
    tpb = draw(st.sampled_from([32, 64, 128, 192, 256]))
    issue = draw(st.floats(0, 1e8, allow_nan=False))
    mem = draw(st.floats(0, 1e7, allow_nan=False))
    atomics = draw(st.floats(0, 1e6, allow_nan=False))
    return KernelTally(
        name="t",
        launch=LaunchConfig(blocks, tpb),
        issue_cycles=issue,
        useful_lane_cycles=issue,
        max_block_cycles=min(issue, 1e5),
        mem_transactions=mem,
        atomics_same_address=atomics,
        active_threads=blocks * tpb // 2,
    )


class TestCostModelProperties:
    @given(tallies())
    @settings(max_examples=80, deadline=None)
    def test_price_positive_finite(self, tally):
        cost = MODEL.price(tally)
        assert cost.seconds > 0
        assert np.isfinite(cost.seconds)
        assert cost.issue_seconds >= 0
        assert cost.memory_seconds >= 0
        assert cost.atomic_seconds >= 0

    @given(tallies(), st.floats(1.5, 10))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_issue(self, tally, factor):
        base = MODEL.price(tally).seconds
        import dataclasses

        more = dataclasses.replace(tally, issue_cycles=tally.issue_cycles * factor)
        assert MODEL.price(more).seconds >= base - 1e-15

    @given(tallies(), st.floats(1.5, 10))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_memory(self, tally, factor):
        import dataclasses

        base = MODEL.price(tally).seconds
        more = dataclasses.replace(
            tally, mem_transactions=tally.mem_transactions * factor
        )
        assert MODEL.price(more).seconds >= base - 1e-15

    @given(tallies(), st.floats(1000, 1e6))
    @settings(max_examples=60, deadline=None)
    def test_atomics_strictly_additive(self, tally, extra):
        import dataclasses

        base = MODEL.price(tally).seconds
        more = dataclasses.replace(
            tally, atomics_same_address=tally.atomics_same_address + extra
        )
        assert MODEL.price(more).seconds > base


@st.composite
def frontier_shapes(draw):
    n = draw(st.integers(64, 50_000))
    size = draw(st.integers(1, min(n, 2_000)))
    max_deg = draw(st.integers(1, 200))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    active = np.sort(rng.choice(n, size=size, replace=False)).astype(np.int64)
    degrees = rng.integers(0, max_deg + 1, size=size).astype(np.int64)
    return ComputationShape(
        name="p",
        num_nodes=n,
        active_ids=active,
        degrees=degrees,
        edge_cost=kcosts.C_EDGE,
        improved=int(degrees.sum() // 2),
        updated_count=max(1, size // 2),
    )


class TestTallyProperties:
    @given(frontier_shapes(), st.sampled_from(list(Mapping)),
           st.sampled_from(list(WorksetRepr)))
    @settings(max_examples=60, deadline=None)
    def test_tally_fields_consistent(self, shape, mapping, workset):
        tpb = 192 if mapping is not Mapping.BLOCK else 64
        tally = computation_tally(shape, mapping, workset, tpb, TESLA_C2070)
        assert tally.issue_cycles > 0
        assert tally.mem_transactions >= 0
        assert tally.max_block_cycles <= tally.issue_cycles + 1e-9
        assert 0 <= tally.simt_efficiency <= 1
        assert tally.active_threads == shape.active_ids.size
        MODEL.price(tally)  # must not raise

    @given(frontier_shapes())
    @settings(max_examples=40, deadline=None)
    def test_bitmap_launches_dominate_queue(self, shape):
        """The bitmap computation launches all n threads and checks every
        flag; the queue launches only the working set.  (Their *issue*
        costs are not strictly ordered — repacking actives into queue
        order can split a warp's heavy lanes across two warps — but the
        launch footprint and the flag-check work are.)"""
        bm = computation_tally(shape, Mapping.THREAD, WorksetRepr.BITMAP, 192, TESLA_C2070)
        qu = computation_tally(shape, Mapping.THREAD, WorksetRepr.QUEUE, 192, TESLA_C2070)
        assert bm.launch.total_threads >= qu.launch.total_threads
        assert bm.useful_lane_cycles >= qu.useful_lane_cycles - 1e-9
        # Both execute the same real work.
        assert bm.active_threads == qu.active_threads

    @given(frontier_shapes())
    @settings(max_examples=40, deadline=None)
    def test_warp_mapping_issue_at_most_thread_divergence(self, shape):
        """Virtual-warp mapping eliminates inter-element divergence, so
        its issue cost is bounded by thread mapping's on the same
        frontier (up to the per-element round quantization)."""
        t = computation_tally(shape, Mapping.THREAD, WorksetRepr.QUEUE, 192, TESLA_C2070)
        w = computation_tally(shape, Mapping.WARP, WorksetRepr.QUEUE, 192, TESLA_C2070)
        # Warp mapping issues one instruction bundle per 32 neighbors per
        # element; thread mapping issues the warp-max per 32 elements.
        # Warp can only exceed thread by the rounding slack.
        slack = shape.active_ids.size * (kcosts.C_EDGE + kcosts.C_CHECK + kcosts.C_NODE)
        assert w.issue_cycles <= t.issue_cycles + slack


class TestWorksetGenProperties:
    @given(st.integers(1, 200_000), st.floats(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_gen_monotone_in_updates(self, n, frac):
        u = int(n * frac)
        lo = sum(
            MODEL.price(t).seconds
            for t in workset_gen_tallies(n, 0, WorksetRepr.QUEUE, TESLA_C2070)
        )
        hi = sum(
            MODEL.price(t).seconds
            for t in workset_gen_tallies(n, u, WorksetRepr.QUEUE, TESLA_C2070)
        )
        assert hi >= lo - 1e-15

    @given(st.integers(1, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_bitmap_gen_independent_of_updates(self, n):
        a = sum(
            MODEL.price(t).seconds
            for t in workset_gen_tallies(n, 0, WorksetRepr.BITMAP, TESLA_C2070)
        )
        b = sum(
            MODEL.price(t).seconds
            for t in workset_gen_tallies(n, n, WorksetRepr.BITMAP, TESLA_C2070)
        )
        # No atomics: the update count only adds the emit instruction.
        assert b <= a * 2


class TestTransferProperties:
    @given(st.integers(0, 10**10), st.integers(0, 10**10))
    @settings(max_examples=60, deadline=None)
    def test_superadditive_due_to_latency(self, a, b):
        """Splitting a transfer pays the latency twice."""
        together = transfer_seconds(a + b, TESLA_C2070)
        split = transfer_seconds(a, TESLA_C2070) + transfer_seconds(b, TESLA_C2070)
        assert split >= together - 1e-12
