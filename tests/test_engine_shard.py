"""Tests for the fault-tolerant multi-device sharded driver
(repro.engine.shard).

The headline guarantee under test: sharding is *transparent*.  For any
device count, partition strategy, and any survivable fault sequence,
the value array is bit-identical (SHA-256) to the 1-device run — the
recovery ladder may cost simulated time, never answers.
"""

import dataclasses

import numpy as np
import pytest

from repro.engine.registry import get_algorithm
from repro.engine.shard import RECOVERY_RUNGS, run_sharded
from repro.errors import (
    FaultPlanError,
    KernelError,
    NonConvergenceError,
)
from repro.graph.generators import attach_uniform_weights, power_law_graph
from repro.obs import Observer, build_shard_manifest, observing
from repro.obs.manifest import RunManifest
from repro.reliability.faults import FaultPlan
from repro.reliability.watchdog import Watchdog


@pytest.fixture(scope="module")
def graph():
    return attach_uniform_weights(
        power_law_graph(240, seed=5, name="shardtest"), seed=6
    )


def _loss_plan(**overrides):
    base = dict(seed=13, device_loss_rate=0.3, max_faults=1)
    base.update(overrides)
    return FaultPlan(**base)


class TestFaultFreeParity:
    @pytest.mark.parametrize("algorithm", ["bfs", "sssp"])
    @pytest.mark.parametrize("strategy", ["contiguous", "balanced"])
    def test_sha_identical_to_one_device(self, graph, algorithm, strategy):
        reference = run_sharded(graph, 0, algorithm=algorithm, num_devices=1)
        sharded = run_sharded(
            graph, 0, algorithm=algorithm, num_devices=4, partition=strategy
        )
        assert sharded.values_sha256 == reference.values_sha256
        assert sharded.recovery_rung == "none"
        assert not sharded.degraded
        assert sharded.num_devices == 4

    def test_matches_cpu_reference(self, graph):
        result = run_sharded(graph, 0, algorithm="sssp", num_devices=3)
        oracle, _ = get_algorithm("sssp").cpu_run(graph, 0)
        np.testing.assert_array_equal(
            result.values, np.asarray(oracle, dtype=result.values.dtype)
        )

    def test_exchange_is_priced_and_counted(self, graph):
        result = run_sharded(graph, 0, algorithm="bfs", num_devices=4)
        assert result.exchange_transfers > 0
        assert result.exchange_bytes > 0
        assert result.exchange_seconds > 0.0
        solo = run_sharded(graph, 0, algorithm="bfs", num_devices=1)
        assert solo.exchange_transfers == 0
        assert solo.exchange_bytes == 0

    def test_decisions_tagged_with_shard_index(self, graph):
        result = run_sharded(graph, 0, algorithm="bfs", num_devices=3)
        tags = {d["shard_index"] for d in result.decisions}
        assert tags <= {0, 1, 2}
        assert len(result.shard_reports) == 3

    def test_non_batchable_algorithm_rejected(self, graph):
        with pytest.raises(KernelError, match="batch"):
            run_sharded(graph, 0, algorithm="pagerank", num_devices=2)

    def test_bad_checkpoint_interval_rejected(self, graph):
        with pytest.raises(KernelError):
            run_sharded(graph, 0, num_devices=2, checkpoint_every=0)

    def test_iteration_cap_still_enforced(self, graph):
        with pytest.raises(NonConvergenceError):
            run_sharded(graph, 0, num_devices=2, max_super_iterations=1)

    def test_watchdog_budget_applies(self, graph):
        with pytest.raises(NonConvergenceError):
            run_sharded(
                graph, 0, num_devices=2, watchdog=Watchdog(max_iterations=1)
            )


class TestDeviceLossRecovery:
    def test_loss_recovers_bit_identical(self, graph):
        reference = run_sharded(graph, 0, algorithm="bfs", num_devices=1)
        result = run_sharded(
            graph,
            0,
            algorithm="bfs",
            num_devices=4,
            fault_plan=_loss_plan(device=2),
            checkpoint_every=2,
        )
        assert result.values_sha256 == reference.values_sha256
        assert result.recovery_rung == "restore"
        assert result.device_losses == 1
        assert result.migrations >= 1
        assert not result.degraded

    def test_loss_attributed_to_one_fault_domain(self, graph):
        result = run_sharded(
            graph,
            0,
            algorithm="bfs",
            num_devices=4,
            fault_plan=_loss_plan(device=1),
            checkpoint_every=2,
        )
        assert len(result.faults) == 1
        fault = result.faults[0]
        assert fault["kind"] == "device_loss"
        assert fault["device"] == 1
        loss_events = [
            e for e in result.recovery_events if e.fault_kind == "device_loss"
        ]
        assert loss_events
        assert {e.device_index for e in loss_events} == {1}

    def test_device_scope_quiet_elsewhere(self, graph):
        result = run_sharded(
            graph,
            0,
            algorithm="sssp",
            num_devices=4,
            fault_plan=_loss_plan(device=3),
            checkpoint_every=2,
        )
        assert all(f["device"] == 3 for f in result.faults)

    def test_scope_beyond_device_count_rejected(self, graph):
        with pytest.raises(FaultPlanError, match="only 2 devices"):
            run_sharded(
                graph, 0, num_devices=2, fault_plan=_loss_plan(device=5)
            )

    def test_rollback_replays_super_iterations(self, graph):
        result = run_sharded(
            graph,
            0,
            algorithm="sssp",
            num_devices=4,
            fault_plan=FaultPlan(seed=3, device_loss_rate=0.5, max_faults=1,
                                 device=0),
            checkpoint_every=4,
        )
        assert result.device_losses == 1
        # The lost round itself is always re-run; anything beyond the
        # last checkpoint is replayed on top.
        assert result.replayed_super_iterations >= 0
        assert result.checkpoints_saved >= 1

    def test_all_devices_lost_degrades_to_cpu(self, graph):
        reference = run_sharded(graph, 0, algorithm="bfs", num_devices=1)
        result = run_sharded(
            graph,
            0,
            algorithm="bfs",
            num_devices=2,
            fault_plan=FaultPlan(seed=1, device_loss_rate=1.0, max_faults=4),
            checkpoint_every=2,
        )
        assert result.degraded
        assert result.recovery_rung == "cpu"
        assert result.values_sha256 == reference.values_sha256
        assert any(e.rung == "cpu" for e in result.recovery_events)

    def test_transient_launch_failures_use_retry_rung(self, graph):
        reference = run_sharded(graph, 0, algorithm="bfs", num_devices=1)
        result = run_sharded(
            graph,
            0,
            algorithm="bfs",
            num_devices=3,
            fault_plan=FaultPlan(seed=2, launch_failure_rate=0.2, max_faults=2),
        )
        assert result.values_sha256 == reference.values_sha256
        if result.faults:
            assert result.recovery_rung in RECOVERY_RUNGS
            assert any(e.rung == "retry" for e in result.recovery_events)

    def test_memory_fault_restores_from_checkpoint(self, graph):
        reference = run_sharded(graph, 0, algorithm="sssp", num_devices=1)
        result = run_sharded(
            graph,
            0,
            algorithm="sssp",
            num_devices=3,
            fault_plan=FaultPlan(seed=5, memory_fault_rate=0.1, max_faults=1),
            checkpoint_every=2,
        )
        assert result.values_sha256 == reference.values_sha256
        if result.faults:
            assert result.restores >= 1
            assert result.device_losses == 0


class TestShardManifest:
    def test_manifest_round_trips(self, graph):
        observer = Observer()
        with observing(observer):
            result = run_sharded(
                graph,
                0,
                algorithm="bfs",
                num_devices=4,
                fault_plan=_loss_plan(device=2),
                checkpoint_every=2,
            )
        manifest = build_shard_manifest(result, graph=graph, observer=observer)
        assert manifest.mode == "sharded"
        assert manifest.algorithm == "bfs"
        assert manifest.source == 0
        assert manifest.result["kind"] == "sharded"
        assert manifest.result["num_devices"] == 4
        assert manifest.result["values_sha256"] == result.values_sha256
        assert manifest.reliability["recovery_rung"] == "restore"
        assert manifest.faults and manifest.faults[0]["device"] == 2
        assert {d["shard_index"] for d in manifest.decisions} <= {0, 1, 2, 3}
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_shard_metrics_reported(self, graph):
        observer = Observer()
        with observing(observer):
            run_sharded(graph, 0, algorithm="bfs", num_devices=3)
        snapshot = observer.metrics.snapshot()
        assert snapshot["shard.super_iterations"]["value"] > 0
        assert snapshot["shard.exchange_transfers"]["value"] > 0
        assert "shard.active_shards" in snapshot


class TestShardedResultShape:
    def test_result_dict_is_json_shaped(self, graph):
        import json

        result = run_sharded(graph, 0, algorithm="bfs", num_devices=2)
        doc = result.result_dict()
        json.dumps(doc)  # must not raise
        assert doc["partition"] == "contiguous"
        assert doc["exchange"]["transfers"] == result.exchange_transfers

    def test_recovery_events_serialize(self, graph):
        result = run_sharded(
            graph,
            0,
            num_devices=4,
            fault_plan=_loss_plan(device=0),
            checkpoint_every=2,
        )
        for event in result.reliability_dict()["events"]:
            assert set(event) == {
                "super_iteration",
                "shard_index",
                "device_index",
                "fault_kind",
                "rung",
                "detail",
            }
