"""Tests for repro.kernels.variants and repro.kernels.workset."""

import numpy as np
import pytest

from repro.errors import KernelError, WorksetError
from repro.gpusim.device import TESLA_C2070
from repro.kernels.variants import (
    Mapping,
    Ordering,
    THREAD_MAPPING_TPB,
    Variant,
    WorksetRepr,
    all_variants,
    block_mapping_tpb,
    unordered_variants,
)
from repro.kernels.workset import Workset, workset_gen_tallies


class TestVariantNaming:
    def test_code_format(self):
        v = Variant(Ordering.UNORDERED, Mapping.BLOCK, WorksetRepr.QUEUE)
        assert v.code == "U_B_QU"
        assert str(v) == "U_B_QU"

    def test_parse_roundtrip(self):
        for v in all_variants():
            assert Variant.parse(v.code) == v

    def test_parse_case_insensitive(self):
        assert Variant.parse("u_t_bm").code == "U_T_BM"

    def test_parse_rejects_garbage(self):
        with pytest.raises(KernelError):
            Variant.parse("U_T")
        with pytest.raises(KernelError):
            Variant.parse("X_T_BM")

    def test_all_variants_table_order(self):
        codes = [v.code for v in all_variants()]
        assert codes == [
            "O_T_BM", "O_T_QU", "O_B_BM", "O_B_QU",
            "U_T_BM", "U_T_QU", "U_B_BM", "U_B_QU",
        ]

    def test_unordered_only(self):
        assert all(v.ordering is Ordering.UNORDERED for v in unordered_variants())
        assert len(unordered_variants()) == 4


class TestLaunchConfiguration:
    def test_thread_mapping_uses_192(self):
        v = Variant.parse("U_T_BM")
        assert v.threads_per_block(50.0, TESLA_C2070) == THREAD_MAPPING_TPB

    def test_block_mapping_follows_avg_degree(self):
        # "the multiple of 32 closest to the average node outdegree"
        assert block_mapping_tpb(73.9, TESLA_C2070) == 64
        assert block_mapping_tpb(100.0, TESLA_C2070) == 96
        assert block_mapping_tpb(8.4, TESLA_C2070) == 32

    def test_block_mapping_clamped(self):
        assert block_mapping_tpb(0.5, TESLA_C2070) == 32
        assert block_mapping_tpb(1e9, TESLA_C2070) == TESLA_C2070.max_threads_per_block


class TestWorkset:
    def test_from_update_ids_sorts_and_dedupes(self):
        ws = Workset.from_update_ids(np.array([5, 1, 5, 3]), WorksetRepr.QUEUE)
        assert ws.nodes.tolist() == [1, 3, 5]
        assert ws.size == 3

    def test_empty(self):
        ws = Workset.from_update_ids(np.array([]), WorksetRepr.BITMAP)
        assert ws.is_empty

    def test_rejects_unsorted_direct_construction(self):
        with pytest.raises(WorksetError):
            Workset(np.array([3, 1]), WorksetRepr.QUEUE)

    def test_rejects_2d(self):
        with pytest.raises(WorksetError):
            Workset(np.zeros((2, 2), dtype=np.int64), WorksetRepr.QUEUE)


class TestWorksetGen:
    def test_bitmap_has_no_atomics(self):
        tallies = workset_gen_tallies(10_000, 500, WorksetRepr.BITMAP, TESLA_C2070)
        assert len(tallies) == 1
        assert tallies[0].atomics_same_address == 0

    def test_queue_atomics_equal_updates(self):
        tallies = workset_gen_tallies(10_000, 500, WorksetRepr.QUEUE, TESLA_C2070)
        assert tallies[-1].atomics_same_address == 500

    def test_scan_based_queue_replaces_atomics(self):
        tallies = workset_gen_tallies(
            100_000, 5_000, WorksetRepr.QUEUE, TESLA_C2070, use_scan=True
        )
        assert len(tallies) > 1  # scan kernels prepended
        assert all(t.atomics_same_address == 0 for t in tallies)

    def test_updated_bounded_by_nodes(self):
        with pytest.raises(WorksetError):
            workset_gen_tallies(10, 11, WorksetRepr.QUEUE, TESLA_C2070)

    def test_scan_cheaper_for_huge_updates(self):
        from repro.gpusim.kernel import CostModel

        model = CostModel(TESLA_C2070)
        n, u = 1_000_000, 400_000
        atomic = sum(
            model.price(t).seconds
            for t in workset_gen_tallies(n, u, WorksetRepr.QUEUE, TESLA_C2070)
        )
        scan = sum(
            model.price(t).seconds
            for t in workset_gen_tallies(
                n, u, WorksetRepr.QUEUE, TESLA_C2070, use_scan=True
            )
        )
        assert scan < atomic  # Merrill et al.'s observation

    def test_atomic_cheaper_for_tiny_updates(self):
        from repro.gpusim.kernel import CostModel

        model = CostModel(TESLA_C2070)
        n, u = 1_000_000, 50
        atomic = sum(
            model.price(t).seconds
            for t in workset_gen_tallies(n, u, WorksetRepr.QUEUE, TESLA_C2070)
        )
        scan = sum(
            model.price(t).seconds
            for t in workset_gen_tallies(
                n, u, WorksetRepr.QUEUE, TESLA_C2070, use_scan=True
            )
        )
        assert atomic < scan  # scan pays fixed multi-kernel overhead
