"""Tests for the batched multi-source frame: repro.engine.batch and the
fused pricing kernels in repro.kernels.multisource.

The load-bearing contract: batching fuses *pricing* only — every row
keeps its own values, frontier, policy and decision trace, so a batched
query's answer AND its decision sequence are bit-identical to the same
query run through the single-source driver.
"""

import numpy as np
import pytest

from repro.core.config import RuntimeConfig
from repro.core.policies import AdaptivePolicy
from repro.core.runtime import adaptive_run, run_static
from repro.engine import QueryPlan, get_algorithm, run_batch_frame
from repro.engine.types import StaticPolicy
from repro.errors import KernelError
from repro.gpusim.device import TESLA_C2070
from repro.kernels.frame import OrderedSsspSpec
from repro.kernels.multisource import (
    RowRelaxation,
    fused_computation_tally,
    fused_readback_bytes,
    fused_workset_gen_tallies,
)
from repro.kernels.variants import Variant, WorksetRepr


def _adaptive_plan(graph, algorithm, source, device=TESLA_C2070):
    info = get_algorithm(algorithm)
    policy = AdaptivePolicy(graph, RuntimeConfig(), device=device)
    return QueryPlan(info.make_spec(), source, policy)


def _static_plan(algorithm, source, code):
    info = get_algorithm(algorithm)
    return QueryPlan(info.make_spec(), source, StaticPolicy(Variant.parse(code)))


def _decisions(trace):
    return [(d.iteration, d.workset_size, d.variant) for d in trace.decisions]


class TestBatchParity:
    def test_bfs_values_and_traces_match_single_source(self, random_graph):
        sources = [0, 3, 17, 55, 199]
        frame = run_batch_frame(
            random_graph, [_adaptive_plan(random_graph, "bfs", s) for s in sources]
        )
        assert frame.ok_count == len(sources)
        for outcome, source in zip(frame.queries, sources):
            single = adaptive_run(random_graph, "bfs", source)
            assert np.array_equal(outcome.values, single.values)
            assert outcome.num_iterations == single.num_iterations
            # Same decision points, same inputs, same variants — the
            # fused frame mirrors run_frame's choose() sequence exactly.
            assert _decisions(outcome.trace) == _decisions(single.trace)

    def test_sssp_values_match_single_source(self, random_weighted):
        sources = [0, 5, 42]
        frame = run_batch_frame(
            random_weighted,
            [_adaptive_plan(random_weighted, "sssp", s) for s in sources],
        )
        for outcome, source in zip(frame.queries, sources):
            single = adaptive_run(random_weighted, "sssp", source)
            # Bit-identical, not merely close: same relaxation order.
            assert np.array_equal(outcome.values, single.values)

    def test_static_variant_parity(self, random_graph):
        frame = run_batch_frame(
            random_graph,
            [_static_plan("bfs", 7, "U_T_QU"), _static_plan("bfs", 90, "U_B_BM")],
        )
        for outcome, (source, code) in zip(
            frame.queries, [(7, "U_T_QU"), (90, "U_B_BM")]
        ):
            single = run_static(random_graph, source, "bfs", code)
            assert np.array_equal(outcome.values, single.values)
            assert all(rec.variant == code for rec in outcome.iterations)

    def test_mixed_algorithm_batch(self, random_weighted):
        frame = run_batch_frame(
            random_weighted,
            [
                _adaptive_plan(random_weighted, "bfs", 0),
                _adaptive_plan(random_weighted, "sssp", 0),
            ],
        )
        assert frame.ok_count == 2
        bfs, sssp = frame.queries
        assert np.array_equal(bfs.values, adaptive_run(random_weighted, "bfs", 0).values)
        assert np.array_equal(
            sssp.values, adaptive_run(random_weighted, "sssp", 0).values
        )


class TestBatchDispatch:
    def test_empty_batch_rejected(self, random_graph):
        with pytest.raises(KernelError, match="at least one query"):
            run_batch_frame(random_graph, [])

    def test_non_batchable_spec_rejected(self, random_weighted):
        # Ordered SSSP keeps per-query findmin structures: routing it
        # into the fused frame is a dispatch bug, not a query fault.
        plan = QueryPlan(
            OrderedSsspSpec(), 0, StaticPolicy(Variant.parse("O_T_QU"))
        )
        with pytest.raises(KernelError, match="batched multi-source"):
            run_batch_frame(random_weighted, [plan])


class TestBatchIsolation:
    def test_bad_source_is_isolated(self, random_graph):
        frame = run_batch_frame(
            random_graph,
            [
                _adaptive_plan(random_graph, "bfs", 0),
                _adaptive_plan(random_graph, "bfs", 10_000),
                _adaptive_plan(random_graph, "bfs", 3),
            ],
        )
        ok0, bad, ok2 = frame.queries
        assert not bad.ok and bad.values is None and "10000" in bad.error
        for outcome, source in ((ok0, 0), (ok2, 3)):
            assert outcome.ok
            assert np.array_equal(
                outcome.values, adaptive_run(random_graph, "bfs", source).values
            )

    def test_cap_exceeded_is_isolated(self, chain10):
        # On the bidirectional 10-chain, source 0 needs 9 iterations but
        # the middle node drains within 6 — it must still finish.
        frame = run_batch_frame(
            chain10,
            [
                _static_plan("bfs", 0, "U_T_QU"),
                _static_plan("bfs", 4, "U_T_QU"),
            ],
            max_iterations=6,
        )
        capped, ok = frame.queries
        assert not capped.ok and "iteration" in capped.error
        assert ok.ok
        assert np.array_equal(ok.values, run_static(chain10, 4, "bfs", "U_T_QU").values)


class TestBatchAmortization:
    def test_fused_stats_and_shared_timeline(self, random_graph):
        sources = [0, 11, 22, 33]
        frame = run_batch_frame(
            random_graph, [_adaptive_plan(random_graph, "bfs", s) for s in sources]
        )
        assert frame.fused_launches > 0
        assert frame.launches_saved > 0
        assert frame.readbacks_saved > 0
        assert frame.super_iterations == max(q.num_iterations for q in frame.queries)
        assert frame.total_seconds > 0
        # Per-query records carry no time: it lives on the one timeline.
        for outcome in frame.queries:
            assert all(rec.seconds == 0.0 for rec in outcome.iterations)

    def test_batch_cheaper_than_sequential(self, random_graph):
        sources = list(range(0, 160, 20))
        frame = run_batch_frame(
            random_graph, [_adaptive_plan(random_graph, "bfs", s) for s in sources]
        )
        sequential = sum(
            adaptive_run(random_graph, "bfs", s).total_seconds for s in sources
        )
        assert frame.total_seconds < sequential


class TestMultisourceKernels:
    def test_fused_tally_needs_rows(self):
        with pytest.raises(ValueError):
            fused_computation_tally([], Variant.parse("U_T_QU"), 128, 10, TESLA_C2070)

    def test_fused_grid_covers_row_slabs(self):
        rows = [
            RowRelaxation(
                active_ids=np.array([0, 3], dtype=np.int64),
                degrees=np.array([2, 1], dtype=np.int64),
                improved=2,
                updated_count=2,
            ),
            RowRelaxation(
                active_ids=np.array([1], dtype=np.int64),
                degrees=np.array([4], dtype=np.int64),
                improved=1,
                updated_count=1,
            ),
        ]
        tally = fused_computation_tally(
            rows, Variant.parse("U_T_QU"), 128, 10, TESLA_C2070
        )
        single = fused_computation_tally(
            rows[:1], Variant.parse("U_T_QU"), 128, 10, TESLA_C2070
        )
        # Stacking a second row grows the fused launch, and the whole
        # batch still pays exactly one launch overhead.
        assert tally.issue_cycles > single.issue_cycles
        assert tally.mem_transactions > single.mem_transactions

    def test_fused_gen_empty_counts_no_launch(self):
        assert fused_workset_gen_tallies(10, [], WorksetRepr.QUEUE, TESLA_C2070) == []

    def test_fused_gen_single_launch(self):
        tallies = fused_workset_gen_tallies(
            100, [5, 0, 12], WorksetRepr.QUEUE, TESLA_C2070
        )
        assert len(tallies) >= 1

    def test_fused_readback_payload(self):
        assert fused_readback_bytes(1) == 4
        assert fused_readback_bytes(8) == 32
        # Never a zero-byte transfer: the host always reads one size.
        assert fused_readback_bytes(0) == 4


class TestBatchFrameContinuous:
    """The steppable frame: continuous admission, per-row ejection."""

    def _drain(self, frame):
        while frame.step():
            pass
        return frame.finish()

    def test_late_admission_matches_single_source(self, random_graph):
        from repro.engine.batch import BatchFrame

        frame = BatchFrame(random_graph)
        frame.admit([_adaptive_plan(random_graph, "bfs", 0)])
        frame.step()
        frame.step()  # first row is mid-flight when the second joins
        frame.admit([_adaptive_plan(random_graph, "bfs", 42)])
        result = self._drain(frame)
        assert result.ok_count == 2
        for outcome in result.queries:
            single = adaptive_run(random_graph, "bfs", outcome.source)
            assert np.array_equal(outcome.values, single.values)
            assert _decisions(outcome.trace) == _decisions(single.trace)

    def test_take_finished_hands_each_row_once(self, random_graph):
        from repro.engine.batch import BatchFrame

        frame = BatchFrame(random_graph)
        frame.admit([
            _adaptive_plan(random_graph, "bfs", s) for s in (0, 7, 21)
        ])
        seen = []
        while frame.step():
            seen.extend(frame.take_finished())
        seen.extend(frame.take_finished())
        assert sorted(o.index for o in seen) == [0, 1, 2]
        assert frame.take_finished() == []

    def test_fault_hook_ejects_one_row_only(self, random_graph):
        from repro.engine.batch import BatchFrame
        from repro.errors import MemoryFaultError

        class OneShot:
            fired = False

            def on_iteration(self, iteration, values, frontier):
                if not OneShot.fired:
                    OneShot.fired = True
                    raise MemoryFaultError("scripted row fault")

        frame = BatchFrame(random_graph, fault_hook=OneShot())
        frame.admit([
            _adaptive_plan(random_graph, "bfs", s) for s in (0, 5, 9)
        ])
        result = self._drain(frame)
        ejected = [q for q in result.queries if q.ejected]
        survivors = [q for q in result.queries if not q.ejected]
        assert len(ejected) == 1 and ejected[0].eject_kind == "fault"
        assert "scripted row fault" in ejected[0].error
        assert result.rows_ejected == 1
        # Survivors are untouched — bit-identical to single-source runs.
        assert len(survivors) == 2
        for outcome in survivors:
            assert outcome.ok
            single = adaptive_run(random_graph, "bfs", outcome.source)
            assert np.array_equal(outcome.values, single.values)

    def test_expired_watchdog_ejects_with_deadline_kind(self, random_graph):
        from repro.engine.batch import BatchFrame
        from repro.reliability import Watchdog

        now = [0.0]
        dog = Watchdog(deadline_s=1.0, clock=lambda: now[0]).arm()
        frame = BatchFrame(random_graph)
        frame.admit(
            [
                _adaptive_plan(random_graph, "bfs", 0),
                _adaptive_plan(random_graph, "bfs", 8),
            ],
            watchdogs=[dog, None],
        )
        frame.step()
        now[0] = 5.0  # the first row's admission deadline expires
        result = self._drain(frame)
        timed_out, ok = result.queries
        assert timed_out.ejected and timed_out.eject_kind == "deadline"
        assert ok.ok
        assert np.array_equal(
            ok.values, adaptive_run(random_graph, "bfs", 8).values
        )

    def test_isolate_capacity_refuses_rows_individually(self, random_graph):
        from repro.engine.batch import BatchFrame
        from repro.gpusim.device import DeviceSpec

        tiny = TESLA_C2070.__class__(
            **{**TESLA_C2070.__dict__,
               "global_mem_bytes": random_graph.device_bytes() + 8_000}
        )
        frame = BatchFrame(random_graph, device=tiny)
        rows = frame.admit(
            [_adaptive_plan(random_graph, "bfs", s) for s in range(6)],
            isolate_capacity=True,
        )
        result = self._drain(frame)
        refused = [q for q in result.queries
                   if q.error and "admission refused" in q.error]
        answered = [q for q in result.queries if q.ok]
        assert refused and answered
        assert len(refused) + len(answered) == 6
