"""The resilient serve loop: admission control, continuous batching,
per-row fault isolation, deadlines and the circuit breaker.

The contract under test is the serving layer's three invariants —
no crash, exactly one response per submitted query, and SHA parity with
fault-free single-source runs for every success — plus the unit
behavior of the pieces: the bounded :class:`AdmissionQueue` (shed
policy, priority displacement, deadline expiry in the queue) and the
:class:`CircuitBreaker` state machine.
"""

import contextlib
import hashlib

import numpy as np
import pytest

from repro.core.runtime import adaptive_run
from repro.errors import MemoryFaultError, ReproError, RuntimeConfigError
from repro.obs import Observer, RunManifest, observing
from repro.reliability import CircuitBreaker, FaultInjector, FaultPlan
from repro.serve import (
    AdmissionQueue,
    BatchQuery,
    GraphSession,
    ServeLoop,
)


def _sha(values) -> str:
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


class _OneShotFault:
    """A frame fault hook that ejects exactly the first row it sees."""

    def __init__(self, count: int = 1):
        self.remaining = count

    def installed(self):
        return contextlib.nullcontext()

    def on_iteration(self, iteration, values, frontier):
        if self.remaining > 0:
            self.remaining -= 1
            raise MemoryFaultError("test fault: scripted one-shot")


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------

class TestAdmissionQueue:
    def test_capacity_validation(self):
        with pytest.raises(RuntimeConfigError):
            AdmissionQueue(capacity=0)

    def test_offer_within_capacity_admits_and_arms(self):
        queue = AdmissionQueue(capacity=2)
        outcome = queue.offer(BatchQuery("bfs", 0), line=1, deadline_s=5.0)
        assert outcome.admitted is not None and outcome.shed is None
        assert outcome.admitted.watchdog.armed
        assert outcome.admitted.deadline_s == 5.0
        assert len(queue) == 1

    def test_full_queue_sheds_newcomer_on_priority_tie(self):
        queue = AdmissionQueue(capacity=1)
        first = queue.offer(BatchQuery("bfs", 0), line=1).admitted
        outcome = queue.offer(BatchQuery("bfs", 1), line=2)
        assert outcome.admitted is None
        assert outcome.shed is not None and outcome.shed.line == 2
        assert not outcome.shed.watchdog.armed
        assert queue.pop(1) == [first]
        assert queue.shed_total == 1

    def test_higher_priority_displaces_lowest(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer(BatchQuery("bfs", 0, priority=0), line=1)
        outcome = queue.offer(BatchQuery("bfs", 1, priority=2), line=2)
        assert outcome.admitted is not None and outcome.admitted.line == 2
        assert outcome.shed is not None and outcome.shed.line == 1
        assert [e.line for e in queue.pop(5)] == [2]

    def test_pop_orders_by_priority_then_fifo(self):
        queue = AdmissionQueue(capacity=8)
        for i, prio in enumerate([0, 2, 1, 2, 0], start=1):
            queue.offer(BatchQuery("bfs", i, priority=prio), line=i)
        assert [e.line for e in queue.pop(5)] == [2, 4, 3, 1, 5]
        assert len(queue) == 0

    def test_expire_overdue_removes_expired_only(self):
        now = [0.0]
        queue = AdmissionQueue(capacity=4, clock=lambda: now[0])
        queue.offer(BatchQuery("bfs", 0), line=1, deadline_s=1.0)
        queue.offer(BatchQuery("bfs", 1), line=2, deadline_s=10.0)
        queue.offer(BatchQuery("bfs", 2), line=3)  # no deadline
        now[0] = 2.0
        overdue = queue.expire_overdue()
        assert [e.line for e in overdue] == [1]
        assert len(queue) == 2

    def test_metrics_reported_to_observer(self):
        observer = Observer()
        with observing(observer):
            queue = AdmissionQueue(capacity=1)
            queue.offer(BatchQuery("bfs", 0), line=1)
            queue.offer(BatchQuery("bfs", 1), line=2)
        snap = observer.metrics.snapshot()
        assert snap["serve.admitted"]["value"] == 1
        assert snap["serve.shed"]["value"] == 1
        assert snap["serve.queue_depth"]["max"] == 1


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(RuntimeConfigError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(RuntimeConfigError):
            CircuitBreaker(cooldown_s=-1)
        with pytest.raises(RuntimeConfigError):
            CircuitBreaker(cooldown_probes=0)

    def test_closed_allows_and_success_resets_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        key = ("batch", "bfs", "adaptive")
        assert breaker.allow(key)
        breaker.record_failure(key)
        breaker.record_success(key)
        breaker.record_failure(key)
        assert breaker.state(key) == "closed"

    def test_trips_after_threshold_and_short_circuits(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1000.0,
                                 cooldown_probes=None)
        key = ("batch", "sssp", "U_T_BM")
        assert not breaker.record_failure(key)
        assert breaker.record_failure(key)  # trips here
        assert breaker.state(key) == "open"
        assert not breaker.allow(key)
        assert not breaker.allow(key)
        assert breaker.total_trips == 1
        assert breaker.total_short_circuits == 2

    def test_half_open_probe_success_closes(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=lambda: now[0])
        key = "path"
        breaker.record_failure(key)
        assert not breaker.allow(key)
        now[0] = 6.0
        assert breaker.state(key) == "half_open"
        assert breaker.allow(key)      # the single probe
        assert not breaker.allow(key)  # a second concurrent probe is denied
        breaker.record_success(key)
        assert breaker.state(key) == "closed"
        assert breaker.allow(key)

    def test_half_open_probe_failure_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=5.0,
                                 clock=lambda: now[0])
        key = "path"
        for _ in range(3):
            breaker.record_failure(key)
        now[0] = 10.0
        assert breaker.allow(key)
        assert breaker.record_failure(key)  # re-trips immediately
        assert breaker.state(key) == "open"
        assert breaker.total_trips == 2

    def test_denied_probes_reach_half_open_without_wall_time(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1e9,
                                 cooldown_probes=2)
        key = "path"
        breaker.record_failure(key)
        assert not breaker.allow(key)
        assert not breaker.allow(key)
        # Two denials burned the probe budget: next request probes.
        assert breaker.allow(key)

    def test_snapshot_shape_and_metrics(self):
        observer = Observer()
        with observing(observer):
            breaker = CircuitBreaker(failure_threshold=1)
            breaker.record_failure(("batch", "bfs", "adaptive"))
            breaker.allow(("batch", "bfs", "adaptive"))
        snap = breaker.snapshot()
        assert snap["batch/bfs/adaptive"]["state"] == "open"
        assert snap["batch/bfs/adaptive"]["trips"] == 1
        metrics = observer.metrics.snapshot()
        assert metrics["breaker.trips"]["value"] == 1
        assert metrics["breaker.short_circuits"]["value"] == 1
        assert metrics["breaker.open_circuits"]["max"] == 1

    def test_transition_log_names_path_and_cause(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=lambda: now[0])
        key = ("batch", "bfs", "adaptive")
        breaker.record_failure(key)        # closed -> open
        now[0] = 6.0
        assert breaker.allow(key)          # open -> half_open (probe)
        breaker.record_success(key)        # half_open -> closed
        log = breaker.transition_log()
        assert [(m["from"], m["to"], m["cause"]) for m in log] == [
            ("closed", "open", "trip"),
            ("open", "half_open", "cooldown"),
            ("half_open", "closed", "reset"),
        ]
        assert all(m["key"] == "batch/bfs/adaptive" for m in log)
        # the log is a snapshot, not a live view
        log.clear()
        assert len(breaker.transition_log()) == 3

    def test_serve_report_carries_transitions(self, random_weighted):
        session = GraphSession(random_weighted)
        loop = ServeLoop(session, max_batch_rows=2)
        loop.breaker.failure_threshold = 1
        loop.breaker.record_failure(("batch", "bfs", "adaptive"))
        report = loop.finalize()
        assert report.breaker_transitions
        move = report.breaker_transitions[0]
        assert move["to"] == "open" and move["cause"] == "trip"
        doc = report.result_dict()
        assert doc["breaker_transitions"] == report.breaker_transitions


# ----------------------------------------------------------------------
# The serve loop
# ----------------------------------------------------------------------

class TestServeLoopHappyPath:
    def test_continuous_parity_with_single_source(self, random_weighted):
        session = GraphSession(random_weighted)
        loop = ServeLoop(session, max_batch_rows=4)
        specs = [("bfs", 0), ("sssp", 3), ("bfs", 7), ("sssp", 11)]
        for i, (algorithm, source) in enumerate(specs, start=1):
            loop.submit(BatchQuery(algorithm, source), line=i)
        loop.drain()
        responses = {r["line"]: r for r in loop.take_responses()}
        assert len(responses) == len(specs)
        for i, (algorithm, source) in enumerate(specs, start=1):
            doc = responses[i]
            assert doc["ok"] and doc["path"] == "batch"
            single = adaptive_run(random_weighted, algorithm, source)
            assert doc["values_sha256"] == _sha(single.values)
            assert doc["latency_sim_s"] > 0.0

    def test_queries_join_a_running_frame(self, random_graph):
        session = GraphSession(random_graph)
        loop = ServeLoop(session, max_batch_rows=8)
        loop.submit(BatchQuery("bfs", 0), line=1)
        loop.pump()  # frame is now mid-flight
        assert loop.busy
        loop.submit(BatchQuery("bfs", 5), line=2)
        loop.drain()
        responses = loop.take_responses()
        assert sorted(r["line"] for r in responses) == [1, 2]
        assert all(r["ok"] for r in responses)
        # Both rode the same frame: one h2d of the graph, shared passes.
        assert loop.report.fallbacks == 0

    def test_drain_scheduler_answers_everything(self, random_graph):
        session = GraphSession(random_graph)
        loop = ServeLoop(session, scheduler="drain", max_batch_rows=2)
        for i in range(5):
            loop.submit(BatchQuery("bfs", i), line=i + 1)
        loop.drain()
        responses = loop.take_responses()
        assert len(responses) == 5 and all(r["ok"] for r in responses)

    def test_unbatchable_mode_routes_to_fallback(self, random_weighted):
        session = GraphSession(random_weighted)
        loop = ServeLoop(session)
        loop.submit(BatchQuery("sssp", 2, mode="O_B_QU"), line=1)
        loop.drain()
        (doc,) = loop.take_responses()
        assert doc["ok"] and doc["path"] == "fallback"
        assert loop.report.fallbacks == 1

    def test_unknown_algorithm_is_explicit_error(self, random_graph):
        loop = ServeLoop(GraphSession(random_graph))
        loop.submit(BatchQuery("nope", 0), line=1)
        loop.drain()
        (doc,) = loop.take_responses()
        assert not doc["ok"] and doc["path"] == "error"
        assert "unknown algorithm" in doc["error"]

    def test_invalid_scheduler_rejected(self, random_graph):
        with pytest.raises(ReproError):
            ServeLoop(GraphSession(random_graph), scheduler="magic")


class TestServeLoopBackpressure:
    def test_overload_sheds_with_explicit_responses(self, random_graph):
        session = GraphSession(random_graph)
        loop = ServeLoop(session, queue_capacity=2, max_batch_rows=2)
        for i in range(6):
            loop.submit(BatchQuery("bfs", i), line=i + 1)
        loop.drain()
        responses = loop.take_responses()
        assert len(responses) == 6  # exactly once, shed included
        shed = [r for r in responses if r["path"] == "shed"]
        served = [r for r in responses if r["ok"]]
        assert len(shed) == 4 and len(served) == 2
        assert all("queue full" in r["error"] for r in shed)
        report = loop.finalize()
        assert report.shed == 4 and report.answered == 6

    def test_priority_wins_a_full_queue(self, random_graph):
        session = GraphSession(random_graph)
        loop = ServeLoop(session, queue_capacity=1)
        loop.submit(BatchQuery("bfs", 0, priority=0), line=1)
        loop.submit(BatchQuery("bfs", 1, priority=5), line=2)
        loop.drain()
        responses = {r["line"]: r for r in loop.take_responses()}
        assert responses[1]["path"] == "shed"
        assert responses[2]["ok"]


class TestServeLoopDeadlines:
    def test_queue_wait_burns_deadline(self, random_graph):
        now = [0.0]
        session = GraphSession(random_graph)
        loop = ServeLoop(session, clock=lambda: now[0])
        loop.submit(BatchQuery("bfs", 0, deadline_s=1.0), line=1)
        now[0] = 5.0  # deadline expires while queued
        loop.drain()
        (doc,) = loop.take_responses()
        assert not doc["ok"] and doc["path"] == "deadline"
        assert loop.report.deadline_misses == 1

    def test_default_deadline_applies(self, random_graph):
        now = [0.0]
        session = GraphSession(random_graph)
        loop = ServeLoop(
            session, default_deadline_s=1.0, clock=lambda: now[0]
        )
        loop.submit(BatchQuery("bfs", 0), line=1)
        now[0] = 2.0
        loop.drain()
        (doc,) = loop.take_responses()
        assert doc["path"] == "deadline"

    def test_generous_deadline_answers_normally(self, random_graph):
        session = GraphSession(random_graph)
        loop = ServeLoop(session, default_deadline_s=3600.0)
        loop.submit(BatchQuery("bfs", 0), line=1)
        loop.drain()
        (doc,) = loop.take_responses()
        assert doc["ok"] and doc["path"] == "batch"


class TestServeLoopFaultIsolation:
    def test_ejected_row_falls_back_others_unaffected(self, random_graph):
        session = GraphSession(random_graph)
        reference = {
            s: _sha(adaptive_run(random_graph, "bfs", s).values)
            for s in (0, 5, 9)
        }
        loop = ServeLoop(
            session, max_batch_rows=4, fault_injector=_OneShotFault(1)
        )
        for i, s in enumerate((0, 5, 9), start=1):
            loop.submit(BatchQuery("bfs", s), line=i)
        loop.drain()
        responses = {r["line"]: r for r in loop.take_responses()}
        assert len(responses) == 3
        # Everyone answers ok — the ejected row via the fallback — and
        # every answer matches the fault-free single-source run.
        paths = sorted(r["path"] for r in responses.values())
        assert paths == ["batch", "batch", "fallback"]
        for i, s in enumerate((0, 5, 9), start=1):
            assert responses[i]["ok"]
            assert responses[i]["values_sha256"] == reference[s]
        assert loop.report.rows_ejected == 1

    def test_seeded_injector_preserves_parity(self, random_weighted):
        session = GraphSession(random_weighted)
        plan = FaultPlan(seed=13, memory_fault_rate=0.2, max_faults=4)
        loop = ServeLoop(
            session, max_batch_rows=4, fault_injector=FaultInjector(plan)
        )
        sources = (0, 3, 6, 9, 12, 15)
        for i, s in enumerate(sources, start=1):
            loop.submit(BatchQuery("sssp", s), line=i)
        loop.drain()
        responses = {r["line"]: r for r in loop.take_responses()}
        assert len(responses) == len(sources)
        for i, s in enumerate(sources, start=1):
            doc = responses[i]
            assert doc["ok"], doc.get("error")
            single = adaptive_run(random_weighted, "sssp", s)
            assert doc["values_sha256"] == _sha(single.values)

    def test_breaker_opens_batch_path_after_repeated_faults(
        self, random_graph
    ):
        session = GraphSession(random_graph)
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1e9,
                                 cooldown_probes=None)
        loop = ServeLoop(
            session,
            max_batch_rows=1,
            fault_injector=_OneShotFault(count=10_000),
            breaker=breaker,
        )
        for i in range(4):
            loop.submit(BatchQuery("bfs", i), line=i + 1)
            loop.drain()
        responses = loop.take_responses()
        assert len(responses) == 4
        key = ("batch", "bfs", "adaptive")
        assert breaker.state(key) == "open"
        # After the trip, queries skip the batch path entirely.
        assert loop.report.rows_ejected == 2
        assert loop.report.fallbacks == 4


class TestServeLoopManifest:
    def test_manifest_round_trips(self, random_graph):
        observer = Observer()
        with observing(observer):
            session = GraphSession(random_graph)
            loop = ServeLoop(session, queue_capacity=2)
            for i in range(4):
                loop.submit(BatchQuery("bfs", i), line=i + 1)
            loop.drain()
            loop.take_responses()
            manifest = loop.to_manifest(observer=observer)
        assert manifest.algorithm == "serve" and manifest.mode == "serve"
        result = manifest.result
        assert result["kind"] == "serve"
        assert result["answered"] == 4
        assert result["shed"] == 2
        assert "p99" in result["latency_sim_s"]
        assert "breaker" in result
        assert manifest.metrics["serve.answered"]["value"] == 4
        assert RunManifest.from_dict(manifest.to_dict()) == manifest
