"""Tests for 1D vertex partitioning (repro.graph.partition).

The load-bearing property: partitioning is lossless.  Any partitioning
of any CSR graph — any shard count, either strategy — must reassemble
to the original graph bit-for-bit, and the sharded traversal built on
top of it must produce value arrays SHA-identical to the 1-device run.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph.builder import from_edge_list
from repro.graph.generators import attach_uniform_weights, power_law_graph
from repro.graph.partition import (
    PARTITION_STRATEGIES,
    GraphShard,
    partition_graph,
    reassemble,
)


def _sha(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


# -- strategies --------------------------------------------------------

@st.composite
def csr_graphs(draw, max_nodes=40, max_edges=160):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    weighted = draw(st.booleans())
    graph = from_edge_list(src, dst, num_nodes=n, dedupe=True)
    if weighted:
        graph = attach_uniform_weights(graph, seed=7)
    return graph


# -- unit coverage -----------------------------------------------------

class TestPartitionBasics:
    def test_rejects_bad_shard_counts(self, tiny_graph):
        with pytest.raises(GraphError):
            partition_graph(tiny_graph, 0)
        with pytest.raises(GraphError):
            partition_graph(tiny_graph, tiny_graph.num_nodes + 1)

    def test_rejects_unknown_strategy(self, tiny_graph):
        with pytest.raises(GraphError, match="unknown partition strategy"):
            partition_graph(tiny_graph, 2, strategy="metis")

    def test_ranges_tile_the_vertex_space(self, tiny_graph):
        shards = partition_graph(tiny_graph, 3)
        assert shards[0].start == 0
        assert shards[-1].stop == tiny_graph.num_nodes
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start

    def test_every_edge_lives_with_its_source(self, tiny_graph):
        for shard in partition_graph(tiny_graph, 2):
            rebuilt_sources = np.repeat(
                np.arange(shard.start, shard.stop),
                np.diff(shard.csr.row_offsets),
            )
            assert shard.owned_mask(rebuilt_sources).all()

    def test_ghost_targets_are_exactly_the_foreign_columns(self, tiny_graph):
        for shard in partition_graph(tiny_graph, 2):
            cols = shard.csr.col_indices
            foreign = np.unique(cols[~shard.owned_mask(cols)])
            assert np.array_equal(shard.ghost_targets, foreign)

    def test_balanced_evens_out_edges(self):
        graph = power_law_graph(300, seed=3)
        contiguous = partition_graph(graph, 4, strategy="contiguous")
        balanced = partition_graph(graph, 4, strategy="balanced")
        spread = lambda shards: max(s.num_edges for s in shards) - min(
            s.num_edges for s in shards
        )
        assert spread(balanced) <= spread(contiguous)

    def test_view_is_full_width_and_cached(self, tiny_graph):
        shard = partition_graph(tiny_graph, 2)[1]
        view = shard.view(tiny_graph.num_nodes)
        assert view.num_nodes == tiny_graph.num_nodes
        assert view.num_edges == shard.num_edges
        assert shard.view(tiny_graph.num_nodes) is view
        degrees = np.diff(view.row_offsets)
        assert (degrees[: shard.start] == 0).all()

    def test_view_too_narrow_raises(self, tiny_graph):
        shard = partition_graph(tiny_graph, 2)[1]
        with pytest.raises(GraphError):
            shard.view(shard.stop - 1)

    def test_owned_slice_of_sorted_frontier(self, tiny_graph):
        shard = partition_graph(tiny_graph, 2)[0]
        frontier = np.arange(tiny_graph.num_nodes, dtype=np.int64)
        owned = shard.owned_slice(frontier)
        assert owned.tolist() == list(range(shard.start, shard.stop))

    def test_reassemble_rejects_holes(self, tiny_graph):
        shards = partition_graph(tiny_graph, 3)
        with pytest.raises(GraphError):
            reassemble([shards[0], shards[2]])


# -- the round-trip property (satellite: hypothesis) -------------------

class TestPartitionRoundTrip:
    @given(
        csr_graphs(),
        st.integers(min_value=1, max_value=6),
        st.sampled_from(PARTITION_STRATEGIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_partitioning_round_trips(self, graph, num_shards, strategy):
        num_shards = min(num_shards, graph.num_nodes)
        shards = partition_graph(graph, num_shards, strategy=strategy)
        assert len(shards) == num_shards
        assert sum(s.num_owned for s in shards) == graph.num_nodes
        assert sum(s.num_edges for s in shards) == graph.num_edges

        rebuilt = reassemble(shards)
        assert _sha(rebuilt.row_offsets) == _sha(graph.row_offsets)
        assert _sha(rebuilt.col_indices) == _sha(graph.col_indices)
        if graph.weights is not None:
            assert _sha(rebuilt.weights) == _sha(graph.weights)
        else:
            assert rebuilt.weights is None

    @given(
        csr_graphs(max_nodes=30, max_edges=90),
        st.integers(min_value=2, max_value=4),
        st.sampled_from(PARTITION_STRATEGIES),
    )
    @settings(max_examples=12, deadline=None)
    def test_sharded_traversal_matches_one_device(
        self, graph, num_devices, strategy
    ):
        from repro.engine.shard import run_sharded

        num_devices = min(num_devices, graph.num_nodes)
        algorithm = "sssp" if graph.has_weights else "bfs"
        reference = run_sharded(graph, 0, algorithm=algorithm, num_devices=1)
        sharded = run_sharded(
            graph,
            0,
            algorithm=algorithm,
            num_devices=num_devices,
            partition=strategy,
        )
        assert sharded.values_sha256 == reference.values_sha256
