"""Tests for the device-memory budget (repro.gpusim.allocator)."""

import pytest

from repro.errors import DeviceError, DeviceOOMError
from repro.gpusim.allocator import (
    ALLOCATION_CATEGORIES,
    MemoryBudget,
    SPILLABLE_CATEGORIES,
    parse_mem_size,
)
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.memory import workset_device_bytes
from repro.kernels.variants import WorksetRepr


class TestParseMemSize:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            (4096, 4096),
            ("4096", 4096),
            ("1k", 1024),
            ("512M", 512 * 1024**2),
            ("512 MiB", 512 * 1024**2),
            ("2g", 2 * 1024**3),
            ("1.5GiB", int(1.5 * 1024**3)),
            ("1T", 1024**4),
            ("8B", 8),
        ],
    )
    def test_accepts(self, spec, expected):
        assert parse_mem_size(spec) == expected

    @pytest.mark.parametrize("spec", ["", "fast", "-4", "12Q", "M", 0, -1, 1.5, True])
    def test_rejects(self, spec):
        with pytest.raises(DeviceError):
            parse_mem_size(spec)


class TestMemoryBudget:
    def test_needs_capacity_or_device(self):
        with pytest.raises(DeviceError):
            MemoryBudget()

    def test_defaults_to_device_capacity(self):
        budget = MemoryBudget(device=TESLA_C2070)
        assert budget.capacity_bytes == TESLA_C2070.global_mem_bytes

    def test_allocate_free_roundtrip(self):
        budget = MemoryBudget(1000)
        assert budget.allocate(600, "graph") == 0
        assert budget.current_bytes == 600
        assert budget.pressure == 0.6
        assert budget.headroom_bytes == 400
        budget.free(600, "graph")
        assert budget.current_bytes == 0
        assert budget.peak_bytes == 600  # peak survives the free

    def test_oom_raises_with_accounting_detail(self):
        budget = MemoryBudget(100)
        budget.allocate(80, "graph")
        with pytest.raises(DeviceOOMError) as exc:
            budget.allocate(40, "state", label="traversal state arrays")
        msg = str(exc.value)
        assert "traversal state arrays" in msg
        assert "20" in msg and "100" in msg
        assert budget.oom_events == 1
        # the failed request must not be charged
        assert budget.current_bytes == 80

    def test_unknown_category_rejected(self):
        budget = MemoryBudget(100)
        with pytest.raises(DeviceError):
            budget.allocate(10, "sorcery")

    def test_over_free_rejected(self):
        budget = MemoryBudget(100)
        budget.allocate(10, "workset")
        with pytest.raises(DeviceError):
            budget.free(20, "workset")

    def test_transient_frees_on_exit(self):
        budget = MemoryBudget(100)
        with budget.transient(60, "checkpoint") as spilled:
            assert spilled == 0
            assert budget.current_bytes == 60
        assert budget.current_bytes == 0
        assert budget.peak_bytes == 60

    def test_transient_frees_on_error(self):
        budget = MemoryBudget(100)
        with pytest.raises(RuntimeError):
            with budget.transient(60, "checkpoint"):
                raise RuntimeError("boom")
        assert budget.current_bytes == 0

    def test_resident_categories_never_spill(self):
        budget = MemoryBudget(100, spill=True)
        for category in ("graph", "state"):
            with pytest.raises(DeviceOOMError):
                budget.allocate(200, category)
        assert category not in SPILLABLE_CATEGORIES

    def test_spill_mode_overflows_spillable_categories(self):
        budget = MemoryBudget(100, spill=True)
        spilled = budget.allocate(150, "workset")
        assert spilled == 50
        assert budget.current_bytes == 100  # device keeps what fits
        assert budget.spilled_bytes == 50
        assert budget.spill_events == 1


class TestWorksetAccounting:
    def test_charge_matches_device_bytes(self):
        budget = MemoryBudget(10_000)
        n = 1000
        budget.charge_workset(WorksetRepr.BITMAP, 700, n)
        assert budget.by_category["workset"] == workset_device_bytes(
            WorksetRepr.BITMAP, 700, n
        )

    def test_recharge_replaces_previous_workset(self):
        budget = MemoryBudget(10_000)
        budget.charge_workset(WorksetRepr.QUEUE, 100, 1000)
        budget.charge_workset(WorksetRepr.QUEUE, 50, 1000)
        assert budget.by_category["workset"] == 50 * 4
        budget.release_workset()
        assert budget.by_category["workset"] == 0

    def test_workset_headroom_includes_live_workset(self):
        budget = MemoryBudget(1000)
        budget.allocate(500, "graph")
        budget.charge_workset(WorksetRepr.QUEUE, 100, 1000)  # 400 bytes
        assert budget.headroom_bytes == 100
        # the live workset is freed before its successor is charged
        assert budget.workset_headroom_bytes() == 500

    def test_ordered_queue_entry_bytes(self):
        budget = MemoryBudget(10_000)
        budget.charge_workset(WorksetRepr.QUEUE, 100, 1000, entry_bytes=8)
        assert budget.by_category["workset"] == 800


class TestReport:
    def test_report_snapshot(self):
        budget = MemoryBudget(1000, spill=True)
        budget.allocate(400, "graph")
        budget.charge_workset(WorksetRepr.QUEUE, 200, 1000)  # 800 -> spills 200
        report = budget.report()
        assert report.capacity_bytes == 1000
        assert report.current_bytes == 1000
        assert report.peak_bytes == 1000
        assert report.peak_pressure == 1.0
        assert report.spilled_bytes == 200
        assert report.spill_events == 1
        d = report.to_dict()
        assert d["by_category"]["graph"] == 400
        assert set(d["peak_by_category"]) == set(ALLOCATION_CATEGORIES)

    def test_report_is_detached_snapshot(self):
        budget = MemoryBudget(1000)
        budget.allocate(100, "graph")
        report = budget.report()
        budget.allocate(100, "graph")
        assert report.current_bytes == 100
