"""The spec-fusion pass and the launch-accounting bug sweep.

Tentpole coverage: :mod:`repro.engine.fusion` lowering (refusal
conditions, the tally merge rule, plan kinds), fused-run value parity,
H2D hoisting, and batched-frame fusion.

Satellite regressions:

- **S1 launch accounting** — every Figure-8 iteration prices exactly
  one computation kernel, one generation kernel and one 4-byte size
  readback; skip-generation exits (DOBFS pull termination) and k-core's
  refill filter charge nothing extra.
- **S2 entry width** — every pricing path honors
  ``StepOutcome.gen_count`` / ``workset_entry_bytes``: ordered queues
  stream 8-byte ``(node, key)`` pairs through generation, find-min and
  the batched generation sweep.
- **S3 zero-work gate** — a ``first_choose_size`` hint of 0 exits the
  loop without consulting the policy or pricing its overhead region, in
  the single-source driver and in batch admission alike.
"""

import hashlib

import numpy as np
import pytest

from repro.engine.batch import BatchFrame, QueryPlan, run_batch_frame
from repro.engine.fusion import FusionStats, LaunchPlan, fuse_tallies, lower
from repro.engine.registry import get_algorithm, registered_algorithms
from repro.engine.types import StaticPolicy, VariantPolicy
from repro.graph.csr import CSRGraph
from repro.graph.datasets import make_dataset
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.kernels.bfs import run_bfs
from repro.kernels.dobfs import direction_optimizing_bfs
from repro.kernels.findmin import findmin_tallies
from repro.kernels.frame import BfsSpec, OrderedSsspSpec
from repro.kernels.kcore import run_kcore
from repro.kernels.multisource import fused_workset_gen_tallies
from repro.kernels.pagerank import traverse_pagerank
from repro.kernels.sssp import run_sssp
from repro.kernels.triangles import run_triangles
from repro.kernels.variants import Variant, WorksetRepr
from repro.kernels.workset import workset_gen_tallies


@pytest.fixture(scope="module")
def graph():
    return make_dataset("p2p", scale=0.1, seed=7, weighted=True)


@pytest.fixture(scope="module")
def empty_graph():
    return CSRGraph(
        np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64), name="empty"
    )


def _sha(values) -> str:
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


def _kernel_counts(result) -> dict:
    counts = {}
    for k in result.timeline.kernels:
        base = k.tally.name.split("[")[0]
        counts[base] = counts.get(base, 0) + 1
    return counts


def _readbacks(result) -> int:
    return sum(
        1
        for t in result.timeline.transfers
        if t.direction == "d2h" and t.num_bytes == 4
    )


class _BoomPolicy(VariantPolicy):
    """A policy that must never be consulted."""

    name = "boom"

    def choose(self, iteration, workset_size):
        raise AssertionError("policy consulted despite zero work")

    def overhead_tallies(self, iteration, workset_size, num_nodes, device):
        raise AssertionError("policy overhead priced despite zero work")


# ---------------------------------------------------------------------------
# Tentpole: the lowering pass
# ---------------------------------------------------------------------------


def test_lower_pins_static_plan():
    plan = lower(BfsSpec(), StaticPolicy(Variant.parse("U_T_BM")))
    assert isinstance(plan, LaunchPlan)
    assert plan.fusible and plan.fuse_always and not plan.fuse_bitmap_only
    assert plan.specialized and plan.fixed_variant == "U_T_BM"
    assert plan.refusals == ()


def test_lower_adaptive_plan_is_bitmap_only(graph):
    from repro.core.policies import AdaptivePolicy

    policy = AdaptivePolicy(graph, device=TESLA_C2070)
    plan = lower(BfsSpec(), policy)
    assert plan.fusible and plan.fuse_bitmap_only and not plan.fuse_always
    assert plan.fixed_variant is None


def test_lower_refuses_ordered_and_scan():
    plan = lower(OrderedSsspSpec(), StaticPolicy(Variant.parse("O_T_QU")))
    assert not plan.fusible
    reasons = " ".join(plan.refusals)
    assert "find-min" in reasons and "ordered" in reasons

    plan = lower(
        BfsSpec(),
        StaticPolicy(Variant.parse("U_T_BM")),
        queue_gen="scan",
    )
    assert not plan.fusible
    assert any("scan" in r for r in plan.refusals)


def test_fuse_tallies_never_costs_more_than_parts(graph):
    base = run_bfs(graph, 0, "U_T_BM")
    model = CostModel(TESLA_C2070, CostParams())
    kernels = base.timeline.kernels
    comp, gen = kernels[0].tally, kernels[1].tally
    fused = fuse_tallies([comp, gen])
    assert "[" not in fused.name  # Timeline.seconds_by_kernel splits on it
    assert fused.name.startswith("fused:")
    separate = model.price(comp).seconds + model.price(gen).seconds
    assert model.price(fused).seconds <= separate + 1e-15
    # One launch overhead instead of two is the guaranteed floor.
    assert separate - model.price(fused).seconds >= (
        TESLA_C2070.kernel_launch_overhead_s - 1e-15
    )


def test_fuse_tallies_rejects_empty():
    with pytest.raises(ValueError):
        fuse_tallies([])


@pytest.mark.parametrize("variant", ["U_T_BM", "U_B_QU"])
def test_fused_static_run_is_bit_identical(graph, variant):
    base = run_bfs(graph, 0, variant)
    fused = run_bfs(graph, 0, variant, fusion=True)
    assert _sha(base.values) == _sha(fused.values)
    assert [r.variant for r in base.iterations] == [
        r.variant for r in fused.iterations
    ]
    stats = fused.fusion
    assert isinstance(stats, FusionStats)
    assert stats.fused_iterations == len(fused.iterations)
    assert stats.refused_iterations == 0
    assert stats.overhead_saved_s == pytest.approx(
        stats.fused_iterations * TESLA_C2070.kernel_launch_overhead_s
    )
    assert fused.total_seconds < base.total_seconds
    # One merged launch replaces the comp+gen pair each iteration.
    assert len(fused.timeline.kernels) == len(base.timeline.kernels) - (
        stats.fused_iterations
    )
    # The size readback is never fused away.
    assert _readbacks(fused) == _readbacks(base)


def test_fused_ordered_run_refuses_but_matches(graph):
    base = run_sssp(graph, 0, "O_T_QU")
    fused = run_sssp(graph, 0, "O_T_QU", fusion=True)
    assert _sha(base.values) == _sha(fused.values)
    assert fused.fusion.plan.fusible is False
    assert fused.fusion.fused_iterations == 0
    assert fused.total_seconds == base.total_seconds


def test_fused_triangles_hoists_h2d(graph):
    base = run_triangles(graph)
    fused = run_triangles(graph, fusion=True)
    assert np.array_equal(base.values, fused.values)
    stats = fused.fusion
    assert stats.fused_iterations == len(fused.iterations)
    # The 64-byte chunk descriptor ships once instead of per iteration.
    assert stats.hoisted_h2d_bytes == 64 * (len(fused.iterations) - 1)
    base_h2d = sum(
        t.num_bytes for t in base.timeline.transfers if t.direction == "h2d"
    )
    fused_h2d = sum(
        t.num_bytes for t in fused.timeline.transfers if t.direction == "h2d"
    )
    assert base_h2d - fused_h2d == stats.hoisted_h2d_bytes


def test_fusion_metrics_reported(graph):
    from repro.obs import Observer

    observer = Observer()
    run_bfs(graph, 0, "U_T_BM", fusion=True, observe=observer)
    snap = observer.metrics.snapshot()
    assert snap["fusion.fused_launches"]["value"] > 0
    assert snap["fusion.launches_eliminated"]["value"] > 0
    assert snap["fusion.overhead_saved_s"]["value"] > 0
    assert snap["fusion.refused_iterations"]["value"] == 0


def test_batch_fusion_parity_and_savings(graph):
    info = get_algorithm("bfs")

    def plans():
        return [
            QueryPlan(
                spec=info.make_spec(),
                source=s,
                policy=StaticPolicy(Variant.parse("U_T_BM")),
            )
            for s in (0, 1, 2, 3)
        ]

    base = run_batch_frame(graph, plans())
    fused = run_batch_frame(graph, plans(), fusion=True)
    for b, f in zip(base.queries, fused.queries):
        assert _sha(b.values) == _sha(f.values)
        assert len(b.iterations) == len(f.iterations)
    assert fused.fused_supersteps > 0
    assert fused.fusion_overhead_saved_s == pytest.approx(
        fused.fused_supersteps * TESLA_C2070.kernel_launch_overhead_s
    )
    assert fused.timeline.total_seconds < base.timeline.total_seconds
    assert base.fused_supersteps == 0


def test_batch_fusion_refuses_mixed_variants(graph):
    info = get_algorithm("bfs")

    def plans():
        return [
            QueryPlan(
                spec=info.make_spec(),
                source=0,
                policy=StaticPolicy(Variant.parse("U_T_BM")),
            ),
            QueryPlan(
                spec=info.make_spec(),
                source=1,
                policy=StaticPolicy(Variant.parse("U_B_QU")),
            ),
        ]

    base = run_batch_frame(graph, plans())
    fused = run_batch_frame(graph, plans(), fusion=True)
    for b, f in zip(base.queries, fused.queries):
        assert _sha(b.values) == _sha(f.values)


# ---------------------------------------------------------------------------
# S1: launch accounting
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("variant", ["U_T_BM", "U_B_QU"])
def test_bfs_prices_one_pair_and_one_readback_per_iteration(graph, variant):
    result = run_bfs(graph, 0, variant)
    counts = _kernel_counts(result)
    iters = result.num_iterations
    assert counts == {"bfs_comp": iters, "workset_gen": iters}
    assert _readbacks(result) == iters


def test_ordered_sssp_prices_findmin_once_per_iteration(graph):
    result = run_sssp(graph, 0, "O_T_QU")
    counts = _kernel_counts(result)
    iters = result.num_iterations
    assert counts == {
        "sssp_ordered_comp": iters,
        "findmin": iters,
        "workset_gen": iters,
    }
    assert _readbacks(result) == iters


def test_dobfs_label_override_charges_no_extra_launches(graph):
    result = direction_optimizing_bfs(graph, 0)
    counts = _kernel_counts(result)
    iters = result.num_iterations
    # Push and pull iterations together cover every iteration exactly
    # once; label-overridden pull steps charge no extra generation.
    assert counts.get("bfs_comp", 0) + counts.get("bfs_pull", 0) == iters
    assert counts["workset_gen"] <= iters
    assert _readbacks(result) <= iters
    assert len(result.timeline.kernels) <= 2 * iters


def test_kcore_refill_charges_filter_only(graph):
    result = run_kcore(graph)
    counts = _kernel_counts(result)
    iters = result.num_iterations
    assert counts["kcore_comp"] == iters
    assert counts["workset_gen"] == iters
    refills = counts.get("kcore_filter", 0)
    # Each refill prices one filter kernel and one 4-byte readback; no
    # iteration is double-charged.
    assert _readbacks(result) == iters + refills
    assert len(result.timeline.kernels) == 2 * iters + refills


# ---------------------------------------------------------------------------
# S2: workset entry width
# ---------------------------------------------------------------------------


def _mem_total(tallies):
    return sum(t.mem_transactions for t in tallies)


@pytest.mark.parametrize("scheme", ["atomic", "hierarchical", "scan"])
def test_workset_gen_honors_entry_bytes(scheme):
    device = TESLA_C2070
    narrow = workset_gen_tallies(
        4096, 2048, WorksetRepr.QUEUE, device, scheme=scheme, entry_bytes=4
    )
    wide = workset_gen_tallies(
        4096, 2048, WorksetRepr.QUEUE, device, scheme=scheme, entry_bytes=8
    )
    assert _mem_total(wide) > _mem_total(narrow)
    # Bitmaps write bits, not records: width must not change them.
    nb = workset_gen_tallies(
        4096, 2048, WorksetRepr.BITMAP, device, scheme=scheme, entry_bytes=4
    )
    wb = workset_gen_tallies(
        4096, 2048, WorksetRepr.BITMAP, device, scheme=scheme, entry_bytes=8
    )
    assert _mem_total(nb) == _mem_total(wb)


def test_findmin_streams_ordered_pairs():
    device = TESLA_C2070
    narrow = findmin_tallies(2048, 4096, WorksetRepr.QUEUE, device, entry_bytes=4)
    wide = findmin_tallies(2048, 4096, WorksetRepr.QUEUE, device, entry_bytes=8)
    assert _mem_total(wide) > _mem_total(narrow)


def test_fused_workset_gen_honors_entry_bytes():
    device = TESLA_C2070
    narrow = fused_workset_gen_tallies(
        1024, [256, 256], WorksetRepr.QUEUE, device, entry_bytes=4
    )
    wide = fused_workset_gen_tallies(
        1024, [256, 256], WorksetRepr.QUEUE, device, entry_bytes=8
    )
    assert _mem_total(wide) > _mem_total(narrow)


def test_ordered_spec_declares_wide_entries(graph):
    assert OrderedSsspSpec().workset_entry_bytes == 8
    # Integration: the ordered run's generation traffic reflects the
    # 8-byte pairs — pricing the same run with 4-byte entries (the old
    # hard-code) must come out cheaper.
    wide = run_sssp(graph, 0, "O_T_QU")

    class _NarrowOrdered(OrderedSsspSpec):
        workset_entry_bytes = 4

    from repro.engine.driver import run_frame

    narrow = run_frame(
        graph, 0, StaticPolicy(Variant.parse("O_T_QU")), _NarrowOrdered()
    )
    assert np.array_equal(wide.values, narrow.values)
    assert wide.gpu_seconds > narrow.gpu_seconds


# ---------------------------------------------------------------------------
# S3: the zero-work gate
# ---------------------------------------------------------------------------


def test_zero_work_graph_never_consults_policy(empty_graph):
    for info in registered_algorithms():
        if info.source_based or info.traverse is None:
            continue  # a source on a 0-node graph is a validation error
        result = info.traverse(empty_graph, -1, _BoomPolicy())
        assert result.num_iterations == 0, info.name
        assert len(result.timeline.kernels) == 0, info.name


def test_pagerank_converged_at_init_skips_policy(graph):
    # tolerance=1.0 swallows the initial residuals: the hint is 0 and
    # the loop exits before any kernel or policy-overhead launch.
    result = traverse_pagerank(graph, _BoomPolicy(), tolerance=1.0)
    assert result.num_iterations == 0
    assert len(result.timeline.kernels) == 0


def test_batch_admit_zero_work_row_skips_policy(graph):
    info = get_algorithm("bfs")

    class _DrainedSpec(type(info.make_spec())):
        def init_state(self, ctx):
            state = super().init_state(ctx)
            state.frontier = np.zeros(0, dtype=state.frontier.dtype)
            return state

        def first_choose_size(self, state):
            return 0

    frame = BatchFrame(graph)
    frame.admit([QueryPlan(spec=_DrainedSpec(), source=0, policy=_BoomPolicy())])
    result = frame.finish()
    assert result.queries[0].error is None
    assert len(result.queries[0].iterations) == 0
