"""Tests for the learned decision maker: fitting, the artifact, and
deployment through the adaptive runtime."""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    FEATURE_NAMES,
    LearnedDecisionMaker,
    LearnedPolicy,
    PolicyArtifact,
    adaptive_bfs,
    adaptive_sssp,
    extract_samples,
    fit_policy,
    load_manifest_corpus,
    resolve_policy,
    run_static,
    variant_costs,
)
from repro.core.learned import POLICY_SCHEMA_VERSION
from repro.errors import ReproError
from repro.graph.generators import (
    attach_uniform_weights,
    erdos_renyi_graph,
    power_law_graph,
)
from repro.kernels.variants import Mapping, WorksetRepr
from repro.obs import build_manifest


@pytest.fixture(scope="module")
def workload():
    g = attach_uniform_weights(
        power_law_graph(8_000, alpha=1.9, max_degree=120, seed=5), seed=6
    )
    src = int(np.argmax(g.out_degrees))
    return g, src


@pytest.fixture(scope="module")
def corpus(workload):
    g, src = workload
    manifests = []
    for seed in (21, 22):
        graph = attach_uniform_weights(
            erdos_renyi_graph(3_000, 18_000, seed=seed), seed=seed + 50
        )
        result = adaptive_sssp(graph, 0)
        manifests.append(
            build_manifest(result, graph=graph, algorithm="sssp",
                           mode="adaptive", source=0)
        )
    result = adaptive_sssp(g, src)
    manifests.append(
        build_manifest(result, graph=g, algorithm="sssp",
                       mode="adaptive", source=src)
    )
    return manifests


@pytest.fixture(scope="module")
def artifact(corpus):
    return fit_policy(corpus)


class TestVariantCosts:
    def test_prices_all_unordered_variants(self):
        out = variant_costs(500, 4.0, 10_000)
        assert set(out) == {"U_T_BM", "U_T_QU", "U_B_BM", "U_B_QU"}
        assert all(v > 0 for v in out.values())

    def test_rejects_empty_graph(self):
        with pytest.raises(ReproError):
            variant_costs(10, 2.0, 0)


class TestExtractSamples:
    def test_one_sample_per_decision(self, workload, corpus):
        manifest = corpus[-1]
        samples = extract_samples(manifest)
        assert len(samples) == len(manifest.decisions)
        assert all(len(s.features) == len(FEATURE_NAMES) for s in samples)

    def test_no_decisions_no_samples(self, workload):
        g, src = workload
        static = run_static(g, src, "sssp", "U_B_QU")
        manifest = build_manifest(static, graph=g, algorithm="sssp",
                                  mode="U_B_QU", source=src)
        assert extract_samples(manifest) == []


class TestFitPolicy:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ReproError, match="empty manifest corpus"):
            fit_policy([])

    def test_traceless_corpus_rejected(self, workload):
        g, src = workload
        static = run_static(g, src, "sssp", "U_B_QU")
        manifest = build_manifest(static, graph=g, algorithm="sssp",
                                  mode="U_B_QU", source=src)
        with pytest.raises(ReproError, match="no decision traces"):
            fit_policy([manifest])

    def test_bad_hyperparameters_rejected(self, corpus):
        with pytest.raises(ReproError):
            fit_policy(corpus, max_depth=0)
        with pytest.raises(ReproError):
            fit_policy(corpus, min_samples_leaf=0)

    def test_mixed_algorithm_corpus(self, workload):
        g, src = workload
        bfs = adaptive_bfs(g, src)
        sssp = adaptive_sssp(g, src)
        art = fit_policy([
            build_manifest(bfs, graph=g, algorithm="bfs",
                           mode="adaptive", source=src),
            build_manifest(sssp, graph=g, algorithm="sssp",
                           mode="adaptive", source=src),
        ])
        assert art.training["algorithms"] == ["bfs", "sssp"]
        assert art.training["samples"] == (
            len(bfs.trace.decisions) + len(sssp.trace.decisions)
        )

    def test_training_provenance(self, corpus, artifact):
        entries = artifact.training["manifests"]
        assert len(entries) == len(corpus)
        for entry, manifest in zip(entries, corpus):
            assert entry["graph_digest"] == manifest.graph["digest"]
            assert entry["decisions"] == len(manifest.decisions)

    def test_depth_cap_respected(self, corpus):
        art = fit_policy(corpus, max_depth=2)
        assert art.depth <= 2


class TestPolicyArtifact:
    def test_round_trip(self, artifact):
        doc = artifact.to_dict()
        again = PolicyArtifact.from_dict(doc)
        assert again == artifact
        assert again.digest == artifact.digest

    def test_save_load(self, artifact, tmp_path):
        path = tmp_path / "policy.json"
        artifact.save(path)
        assert PolicyArtifact.load(path) == artifact

    def test_schema_version_mismatch_rejected(self, artifact):
        doc = artifact.to_dict()
        doc["schema_version"] = POLICY_SCHEMA_VERSION + 1
        with pytest.raises(ReproError, match="schema_version"):
            PolicyArtifact.from_dict(doc)

    def test_digest_tamper_rejected(self, artifact, tmp_path):
        doc = artifact.to_dict()
        doc["classes"] = list(reversed(doc["classes"]))
        with pytest.raises(ReproError, match="digest mismatch"):
            PolicyArtifact.from_dict(doc)
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ReproError, match="digest mismatch"):
            PolicyArtifact.load(path)

    def test_wrong_kind_rejected(self, artifact):
        with pytest.raises(ReproError, match="kind"):
            dataclasses.replace(artifact, kind="mlp")

    def test_wrong_feature_schema_rejected(self, artifact):
        with pytest.raises(ReproError, match="feature schema"):
            dataclasses.replace(artifact, feature_names=("workset_size",))

    def test_missing_file_is_repro_error(self, tmp_path):
        with pytest.raises(ReproError, match="cannot load"):
            PolicyArtifact.load(tmp_path / "absent.json")


# Random-but-valid trees over the real feature schema: internal nodes
# split on a feature name + float threshold, leaves carry a variant.
_CLASSES = ("U_T_BM", "U_T_QU", "U_B_BM", "U_B_QU")
_FLOATS = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
_LEAVES = st.fixed_dictionaries({
    "variant": st.sampled_from(_CLASSES),
    "samples": st.integers(1, 10_000),
    "regret": st.floats(0, 1e3, allow_nan=False),
})
_TREES = st.recursive(
    _LEAVES,
    lambda children: st.fixed_dictionaries({
        "feature": st.sampled_from(FEATURE_NAMES),
        "threshold": _FLOATS,
        "samples": st.integers(2, 10_000),
        "left": children,
        "right": children,
    }),
    max_leaves=12,
)


class TestArtifactProperties:
    @given(tree=_TREES)
    @settings(max_examples=60, deadline=None)
    def test_serialize_load_round_trip(self, tree):
        art = PolicyArtifact(tree=tree, classes=_CLASSES)
        text = json.dumps(art.to_dict())
        again = PolicyArtifact.from_dict(json.loads(text))
        assert again == art
        assert again.digest == art.digest

    @given(tree=_TREES, ws=st.integers(0, 10_000), deg=st.floats(0, 500),
           pressure=st.floats(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_decide_always_legal(self, tree, ws, deg, pressure):
        dm = LearnedDecisionMaker(
            PolicyArtifact(tree=tree, classes=_CLASSES), num_nodes=10_000
        )
        variant = dm.decide(ws, deg, memory_pressure=pressure)
        assert variant.code in {
            "U_T_BM", "U_T_QU", "U_B_BM", "U_B_QU",
            "U_W_BM", "U_W_QU",
        }
        if dm.under_pressure(pressure):
            assert variant.mapping is not Mapping.BLOCK


class TestResolvePolicy:
    def test_artifact_passthrough(self, artifact):
        assert resolve_policy(artifact) is artifact

    def test_learned_spec_loads(self, artifact, tmp_path):
        path = tmp_path / "p.json"
        artifact.save(path)
        assert resolve_policy(f"learned:{path}") == artifact

    def test_empty_path_rejected(self):
        with pytest.raises(ReproError, match="requires an artifact path"):
            resolve_policy("learned:")

    def test_unknown_spec_rejected(self):
        with pytest.raises(ReproError, match="unknown policy spec"):
            resolve_policy("oracle")


class TestLearnedDecisionMaker:
    def test_pressure_override_borrows_threshold_behaviour(self, artifact):
        dm = LearnedDecisionMaker(artifact, num_nodes=10_000)
        relaxed = dm.decide(4_000, 8.0, memory_pressure=0.0)
        squeezed = dm.decide(4_000, 8.0, memory_pressure=0.95)
        assert squeezed.workset is WorksetRepr.BITMAP  # minimal for big ws
        assert squeezed.mapping is not Mapping.BLOCK
        assert relaxed.ordering is squeezed.ordering

    def test_region_labels(self, artifact):
        dm = LearnedDecisionMaker(artifact, num_nodes=10_000)
        assert dm.region(100, 4.0).startswith("learned/leaf-depth-")
        assert dm.region(100, 4.0, memory_pressure=0.99).endswith("/mem-pressure")

    def test_telemetry_counters(self, artifact):
        dm = LearnedDecisionMaker(artifact, num_nodes=10_000)
        dm.decide(100, 4.0)
        dm.decide(5_000, 4.0, memory_pressure=0.99)
        assert dm.evaluations == 2
        assert len(dm.leaf_depths) == 2
        assert dm.overrides >= 0

    def test_invalid_pressure_threshold(self, artifact):
        from repro.errors import RuntimeConfigError

        with pytest.raises(RuntimeConfigError):
            LearnedDecisionMaker(artifact, pressure_threshold=0.0)


class TestDeployment:
    def test_values_match_threshold_policy(self, workload, artifact):
        g, src = workload
        threshold = adaptive_sssp(g, src)
        learned = adaptive_sssp(g, src, policy=artifact)
        assert np.array_equal(threshold.values, learned.values)
        assert learned.policy is not None
        assert learned.policy["digest"] == artifact.digest
        assert threshold.policy is None

    def test_policy_spec_string(self, workload, artifact, tmp_path):
        g, src = workload
        path = tmp_path / "p.json"
        artifact.save(path)
        learned = adaptive_sssp(g, src, policy=f"learned:{path}")
        assert learned.policy["digest"] == artifact.digest

    def test_learned_policy_name_and_info(self, workload, artifact, device):
        g, _ = workload
        policy = LearnedPolicy(g, artifact, device=device)
        assert policy.name == "learned"
        info = policy.policy_info()
        assert info["kind"] == "decision_tree"
        assert info["num_leaves"] == artifact.num_leaves

    def test_manifest_records_policy(self, workload, artifact):
        g, src = workload
        learned = adaptive_sssp(g, src, policy=artifact)
        manifest = build_manifest(learned, graph=g, algorithm="sssp",
                                  mode="learned", source=src)
        assert manifest.policy["digest"] == artifact.digest
        again = type(manifest).from_dict(manifest.to_dict())
        assert again == manifest

    def test_policy_metrics_reported(self, workload, artifact):
        from repro.obs import Observer

        g, src = workload
        observer = Observer()
        adaptive_sssp(g, src, policy=artifact, observe=observer)
        snapshot = observer.metrics.snapshot()
        assert snapshot["policy.evaluations"]["value"] > 0
        assert "policy.leaf_depth" in snapshot


class TestCorpusLoading:
    def test_round_trip_through_disk(self, corpus, tmp_path):
        paths = []
        for i, manifest in enumerate(corpus):
            path = tmp_path / f"m{i}.json"
            manifest.write(path)
            paths.append(path)
        loaded = load_manifest_corpus(paths)
        assert [m for _, m in loaded] == list(corpus)

    def test_bad_file_named_in_error(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="broken.json"):
            load_manifest_corpus([bad])

    def test_missing_file_named_in_error(self, tmp_path):
        with pytest.raises(ReproError, match="absent.json"):
            load_manifest_corpus([tmp_path / "absent.json"])
