"""End-to-end tests for memory-constrained execution.

Covers the tentpole guarantees: a budget threaded through the traversal
frame charges every resident array and working set; the adaptive policy
steers toward compact representations under pressure; and the guarded
runner's OOM ladder recovers bit-identically when the budget genuinely
overflows.
"""

import numpy as np
import pytest

from repro.core import adaptive_bfs, adaptive_sssp
from repro.cpu import cpu_bfs
from repro.errors import DeviceOOMError
from repro.gpusim.allocator import MemoryBudget
from repro.gpusim.memory import traversal_state_bytes
from repro.graph.generators import attach_uniform_weights, rmat_graph
from repro.reliability import GuardConfig, resilient_bfs


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(10, 8.0, seed=3)


@pytest.fixture(scope="module")
def weighted_graph(graph):
    return attach_uniform_weights(graph, seed=3)


def _resident_bytes(graph):
    return graph.device_bytes() + traversal_state_bytes(graph.num_nodes)


def _bitmap_bytes(graph):
    return (graph.num_nodes + 7) // 8


class TestBudgetedAdaptive:
    def test_ample_budget_is_bit_identical(self, graph):
        baseline = adaptive_bfs(graph, 0)
        memory = MemoryBudget("64M")
        result = adaptive_bfs(graph, 0, memory=memory)
        assert np.array_equal(result.traversal.values, baseline.traversal.values)
        report = result.memory
        assert report is not None
        assert report.by_category["graph"] == graph.device_bytes()
        assert report.by_category["state"] == traversal_state_bytes(graph.num_nodes)
        assert report.peak_by_category["workset"] > 0
        assert report.oom_events == 0

    def test_workset_released_at_end(self, graph):
        memory = MemoryBudget("64M")
        adaptive_bfs(graph, 0, memory=memory)
        assert memory.by_category["workset"] == 0

    def test_tight_budget_forces_decisions_without_oom(self, graph):
        baseline = adaptive_bfs(graph, 0)
        budget = _resident_bytes(graph) + _bitmap_bytes(graph) + 64
        result = adaptive_bfs(graph, 0, memory=MemoryBudget(budget))
        assert np.array_equal(result.traversal.values, baseline.traversal.values)
        assert result.trace.num_memory_forced > 0
        assert result.trace.peak_memory_pressure > 0.9
        assert result.memory.oom_events == 0
        forced = [d for d in result.trace.decisions if d.forced_by_memory]
        assert all("/mem-pressure" in d.region or d.forced_by_memory for d in forced)

    def test_impossible_budget_raises_oom(self, graph):
        with pytest.raises(DeviceOOMError, match="CSR arrays"):
            adaptive_bfs(graph, 0, memory=MemoryBudget(1024))

    def test_spill_mode_prices_pcie_and_stays_correct(self, graph):
        baseline = adaptive_bfs(graph, 0)
        budget = _resident_bytes(graph) + 16  # no room for any workset
        memory = MemoryBudget(budget, spill=True)
        result = adaptive_bfs(graph, 0, memory=memory)
        assert np.array_equal(result.traversal.values, baseline.traversal.values)
        assert result.memory.spilled_bytes > 0
        assert result.memory.spill_events > 0

    def test_sssp_under_budget_matches_unbudgeted(self, weighted_graph):
        baseline = adaptive_sssp(weighted_graph, 0)
        budget = _resident_bytes(weighted_graph) + _bitmap_bytes(weighted_graph) + 64
        result = adaptive_sssp(
            weighted_graph, 0, memory=MemoryBudget(budget, spill=True)
        )
        assert np.allclose(result.traversal.values, baseline.traversal.values)


class TestPressureTelemetry:
    def test_decision_records_pressure(self, graph):
        result = adaptive_bfs(graph, 0, memory=MemoryBudget("64M"))
        assert all(d.memory_pressure >= 0.0 for d in result.trace.decisions)
        assert result.trace.peak_memory_pressure >= 0.0

    def test_unbudgeted_run_reports_no_memory(self, graph):
        result = adaptive_bfs(graph, 0)
        assert result.memory is None
        assert result.trace.num_memory_forced == 0


class TestOOMLadder:
    def test_rung1_spill_recovers_bit_identically(self, graph):
        oracle = cpu_bfs(graph, 0).levels
        budget = _resident_bytes(graph) + 16  # resident fits, no workset does
        guard = GuardConfig(mem_budget=budget)
        result = resilient_bfs(graph, 0, guard=guard)
        assert np.array_equal(result.values, oracle)
        assert result.oom_rung == 1
        assert not result.degraded
        assert any(e.kind == "device_oom" for e in result.faults)
        assert result.recovery_actions().get("workset_spill") == 1
        assert result.memory is not None
        assert result.memory.spilled_bytes > 0

    def test_ladder_exhaustion_degrades_to_cpu(self, graph):
        oracle = cpu_bfs(graph, 0).levels
        guard = GuardConfig(mem_budget=_resident_bytes(graph) // 2)
        result = resilient_bfs(graph, 0, guard=guard)
        assert np.array_equal(result.values, oracle)
        assert result.degraded
        assert result.stage == "cpu"
        assert result.oom_rung == 4
        actions = result.recovery_actions()
        assert actions.get("workset_spill") == 1
        assert actions.get("force_bitmap") == 1
        assert actions.get("checkpoint_relief") == 1
        assert actions.get("cpu_degradation") == 1

    def test_ladder_exhaustion_without_cpu_fallback_raises(self, graph):
        guard = GuardConfig(
            mem_budget=_resident_bytes(graph) // 2, degrade_to_cpu=False
        )
        with pytest.raises(DeviceOOMError):
            resilient_bfs(graph, 0, guard=guard)

    def test_no_budget_means_no_rung(self, graph):
        result = resilient_bfs(graph, 0)
        assert result.oom_rung == 0
        assert result.memory is None

    def test_oom_events_recorded_as_faults(self, graph):
        guard = GuardConfig(mem_budget=_resident_bytes(graph) + 16)
        result = resilient_bfs(graph, 0, guard=guard)
        oom_faults = [e for e in result.faults if e.kind == "device_oom"]
        assert len(oom_faults) == 1
        assert oom_faults[0].site == "allocator"
