"""Tests for repro.kernels.computation (functional step semantics)."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.graph.generators import attach_uniform_weights, chain_graph, star_graph
from repro.gpusim.device import TESLA_C2070
from repro.kernels.computation import (
    INF,
    OrderedSsspState,
    UNSET_LEVEL,
    bfs_step,
    sssp_ordered_step,
    sssp_step,
)
from repro.kernels.findmin import findmin
from repro.kernels.variants import Variant, WorksetRepr
from repro.kernels.workset import Workset


def fresh_levels(n, source):
    levels = np.full(n, UNSET_LEVEL, dtype=np.int64)
    levels[source] = 0
    return levels


def fresh_dist(n, source):
    dist = np.full(n, INF, dtype=np.float64)
    dist[source] = 0.0
    return dist


UTBM = Variant.parse("U_T_BM")
OTBM = Variant.parse("O_T_BM")


class TestBfsStep:
    def test_one_step_expands_frontier(self, tiny_graph):
        levels = fresh_levels(5, 0)
        ws = Workset.from_update_ids(np.array([0]), WorksetRepr.BITMAP)
        step = bfs_step(tiny_graph, ws, levels, UTBM, 192, TESLA_C2070)
        assert step.updated.tolist() == [1, 2]
        assert levels[1] == 1 and levels[2] == 1

    def test_no_rediscovery(self, tiny_graph):
        levels = fresh_levels(5, 0)
        ws = Workset.from_update_ids(np.array([0]), WorksetRepr.BITMAP)
        step = bfs_step(tiny_graph, ws, levels, UTBM, 192, TESLA_C2070)
        ws2 = Workset.from_update_ids(step.updated, WorksetRepr.BITMAP)
        step2 = bfs_step(tiny_graph, ws2, levels, UTBM, 192, TESLA_C2070)
        # 1->2 does not re-add node 2 (level would not improve).
        assert 2 not in step2.updated.tolist()
        assert step2.updated.tolist() == [3, 4]

    def test_ordered_first_touch_only(self, tiny_graph):
        levels = fresh_levels(5, 0)
        ws = Workset.from_update_ids(np.array([0]), WorksetRepr.BITMAP)
        step = bfs_step(tiny_graph, ws, levels, OTBM, 192, TESLA_C2070)
        assert step.updated.tolist() == [1, 2]

    def test_empty_workset_rejected(self, tiny_graph):
        levels = fresh_levels(5, 0)
        ws = Workset.from_update_ids(np.array([]), WorksetRepr.BITMAP)
        with pytest.raises(KernelError):
            bfs_step(tiny_graph, ws, levels, UTBM, 192, TESLA_C2070)

    def test_edges_scanned_counts_frontier_degrees(self, star_64):
        levels = fresh_levels(64, 0)
        ws = Workset.from_update_ids(np.array([0]), WorksetRepr.QUEUE)
        step = bfs_step(star_64, ws, levels, UTBM, 192, TESLA_C2070)
        assert step.edges_scanned == 63
        assert step.updated.size == 63


class TestSsspStep:
    def test_relaxation(self, tiny_weighted):
        dist = fresh_dist(5, 0)
        ws = Workset.from_update_ids(np.array([0]), WorksetRepr.QUEUE)
        step = sssp_step(tiny_weighted, ws, dist, UTBM, 192, TESLA_C2070)
        assert dist[1] == 1.0 and dist[2] == 4.0
        assert step.updated.tolist() == [1, 2]

    def test_improvement_only(self, tiny_weighted):
        dist = fresh_dist(5, 0)
        dist[1], dist[2] = 1.0, 3.0  # 2 already better than via 0 (4.0)
        ws = Workset.from_update_ids(np.array([0]), WorksetRepr.QUEUE)
        step = sssp_step(tiny_weighted, ws, dist, UTBM, 192, TESLA_C2070)
        assert step.updated.size == 0

    def test_multiple_candidates_take_min(self):
        # two paths into node 2: 0->2 (10) and 1->2 (1); frontier {0,1}
        g = attach_uniform_weights(chain_graph(3), seed=0)
        g = g.with_weights([5.0, 5.0, 1.0, 1.0])  # 0-1 (5), 1-2 (1)
        dist = fresh_dist(3, 0)
        dist[1] = 5.0
        ws = Workset.from_update_ids(np.array([0, 1]), WorksetRepr.QUEUE)
        sssp_step(g, ws, dist, UTBM, 192, TESLA_C2070)
        assert dist[2] == 6.0

    def test_requires_weights(self, tiny_graph):
        dist = fresh_dist(5, 0)
        ws = Workset.from_update_ids(np.array([0]), WorksetRepr.QUEUE)
        with pytest.raises(KernelError):
            sssp_step(tiny_graph, ws, dist, UTBM, 192, TESLA_C2070)


class TestOrderedSssp:
    def test_settles_min_first(self, tiny_weighted):
        state = OrderedSsspState.initial(5, 0, dedupe=True)
        step = sssp_ordered_step(
            tiny_weighted, state, findmin(state.ws_keys), OTBM, 192, TESLA_C2070
        )
        assert state.dist[0] == 0.0
        assert step.settled == 1
        # neighbors of 0 inserted with their candidate keys
        assert set(state.ws_nodes.tolist()) == {1, 2}

    def test_full_run_matches_dijkstra(self, tiny_weighted):
        from repro.cpu import cpu_dijkstra

        state = OrderedSsspState.initial(5, 0, dedupe=True)
        for _ in range(100):
            if state.workset_size == 0:
                break
            sssp_ordered_step(
                tiny_weighted, state, findmin(state.ws_keys), OTBM, 192, TESLA_C2070
            )
        oracle = cpu_dijkstra(tiny_weighted, 0, method="heap")
        assert np.allclose(state.dist, oracle.distances)

    def test_queue_multiset_grows(self, star_64):
        """Queue (dedupe=False) keeps duplicate pairs; bitmap dedupes."""
        g = attach_uniform_weights(star_64, seed=1)
        q_state = OrderedSsspState.initial(64, 1, dedupe=False)  # leaf source
        b_state = OrderedSsspState.initial(64, 1, dedupe=True)
        for state in (q_state, b_state):
            variant = OTBM
            for _ in range(3):
                if state.workset_size == 0:
                    break
                sssp_ordered_step(
                    g, state, findmin(state.ws_keys), variant, 192, TESLA_C2070
                )
        # hub expansion inserts one pair per leaf either way, but the
        # bitmap state can never exceed n entries.
        assert b_state.workset_size <= 64

    def test_stale_pairs_dropped(self, tiny_weighted):
        state = OrderedSsspState.initial(5, 0, dedupe=False)
        # Manually inject a stale pair for an already-settled node.
        state.dist[1] = 0.5
        state.ws_nodes = np.array([1], dtype=np.int64)
        state.ws_keys = np.array([2.0], dtype=np.float64)
        step = sssp_ordered_step(
            tiny_weighted, state, 2.0, OTBM, 192, TESLA_C2070
        )
        assert step.settled == 0
        assert state.dist[1] == 0.5  # untouched
