"""Tests for direction-optimizing (push/pull) BFS."""

import numpy as np
import pytest

from repro.cpu import cpu_bfs
from repro.errors import KernelError
from repro.graph.generators import (
    balanced_tree,
    chain_graph,
    erdos_renyi_graph,
    power_law_graph,
    star_graph,
)
from repro.kernels.computation import UNSET_LEVEL
from repro.kernels.dobfs import (
    DirectionConfig,
    direction_optimizing_bfs,
    pull_step,
)
from repro.gpusim.device import TESLA_C2070


class TestPullStep:
    def test_single_pull_matches_level(self):
        g = star_graph(50)
        levels = np.full(50, UNSET_LEVEL, dtype=np.int64)
        levels[0] = 0
        mask = np.zeros(50, dtype=bool)
        mask[0] = True
        new_frontier, tally, edges = pull_step(
            g, g, mask, levels, 1, 192, TESLA_C2070
        )
        assert sorted(new_frontier.tolist()) == list(range(1, 50))
        assert np.all(levels[1:] == 1)
        # Every leaf finds the hub on its first in-edge.
        assert edges == 49

    def test_early_exit_counts_edges(self):
        # chain 0-1-2: from frontier {0}, node 1 hits at its first
        # in-neighbor; node 2 scans both its in-neighbors and misses.
        g = chain_graph(3)
        levels = np.array([0, UNSET_LEVEL, UNSET_LEVEL], dtype=np.int64)
        mask = np.array([True, False, False])
        new_frontier, _, edges = pull_step(g, g, mask, levels, 1, 192, TESLA_C2070)
        assert new_frontier.tolist() == [1]
        assert edges <= g.num_edges

    def test_no_unvisited(self):
        g = chain_graph(3)
        levels = np.array([0, 1, 2], dtype=np.int64)
        mask = np.zeros(3, dtype=bool)
        new_frontier, tally, edges = pull_step(g, g, mask, levels, 3, 192, TESLA_C2070)
        assert new_frontier.size == 0
        assert tally is None


class TestDirectionOptimizingBfs:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: chain_graph(60),
            lambda: star_graph(200),
            lambda: balanced_tree(3, 5),
            lambda: erdos_renyi_graph(400, 2400, seed=21),
            lambda: power_law_graph(500, alpha=1.7, max_degree=120, seed=22),
        ],
    )
    def test_levels_match_cpu(self, maker):
        g = maker()
        result = direction_optimizing_bfs(g, 0)
        assert np.array_equal(result.values, cpu_bfs(g, 0).levels)

    def test_dense_graph_uses_pull(self):
        g = power_law_graph(20_000, alpha=1.6, max_degree=800, seed=23,
                            symmetric=True)
        src = int(np.argmax(g.out_degrees))
        result = direction_optimizing_bfs(g, src)
        assert "pull" in result.variants_used()
        assert np.array_equal(result.values, cpu_bfs(g, src).levels)

    def test_sparse_chain_stays_push(self):
        result = direction_optimizing_bfs(chain_graph(300), 0)
        assert set(result.variants_used()) == {"push"}

    def test_pull_scans_fewer_edges(self):
        from repro.kernels import run_bfs

        g = power_law_graph(20_000, alpha=1.6, max_degree=800, seed=23,
                            symmetric=True)
        src = int(np.argmax(g.out_degrees))
        push = run_bfs(g, src, "U_T_BM")
        do = direction_optimizing_bfs(g, src)
        assert do.total_edges_scanned < 0.5 * push.total_edges_scanned

    def test_thresholds_validated(self):
        with pytest.raises(KernelError):
            DirectionConfig(alpha=0)
        with pytest.raises(KernelError):
            DirectionConfig(beta=-1)

    def test_alpha_extremes(self):
        g = erdos_renyi_graph(2_000, 16_000, seed=24)
        # Tiny alpha raises the switch threshold to m/alpha >> m: never pull.
        never_pull = direction_optimizing_bfs(
            g, 0, config=DirectionConfig(alpha=1e-9)
        )
        assert set(never_pull.variants_used()) == {"push"}
        assert np.array_equal(never_pull.values, cpu_bfs(g, 0).levels)
        # Huge alpha drops the threshold to ~0: pull engages immediately
        # (beta=0+ keeps it there), and the answer is still right.
        eager_pull = direction_optimizing_bfs(
            g, 0, config=DirectionConfig(alpha=1e9, beta=1e9)
        )
        assert "pull" in eager_pull.variants_used()
        assert np.array_equal(eager_pull.values, cpu_bfs(g, 0).levels)

    def test_directed_graph_uses_reverse(self, tiny_graph):
        result = direction_optimizing_bfs(tiny_graph, 0)
        assert np.array_equal(result.values, cpu_bfs(tiny_graph, 0).levels)

    def test_algorithm_tag(self):
        r = direction_optimizing_bfs(chain_graph(5), 0)
        assert r.algorithm == "dobfs"
        assert r.policy_name == "direction-optimizing"


class TestObservedDobfs:
    def test_dobfs_accepts_observe(self):
        from repro.obs import Observer

        g = power_law_graph(4000, alpha=1.9, max_degree=200, seed=6)
        observer = Observer()
        result = direction_optimizing_bfs(g, 0, observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["frame.iterations"]["value"] == result.num_iterations
        assert snap["gpusim.kernel_launches"]["value"] > 0
        names = [s.name for s in observer.spans.spans]
        assert names.count("iteration") == result.num_iterations

    def test_observation_does_not_change_result(self):
        from repro.obs import Observer

        g = power_law_graph(4000, alpha=1.9, max_degree=200, seed=6)
        plain = direction_optimizing_bfs(g, 0)
        observed = direction_optimizing_bfs(g, 0, observe=Observer())
        assert np.array_equal(plain.values, observed.values)
        assert plain.total_seconds == observed.total_seconds
