"""Tests for repro.core.inspector, repro.core.policies and
repro.core.telemetry."""

import numpy as np
import pytest

from repro.core.config import RuntimeConfig
from repro.core.inspector import GraphInspector, StaticAttributes
from repro.core.policies import AdaptivePolicy
from repro.core.telemetry import Decision, DecisionTrace
from repro.graph.generators import erdos_renyi_graph, power_law_graph, star_graph
from repro.gpusim.device import TESLA_C2070
from repro.kernels.frame import IterationRecord


class TestStaticAttributes:
    def test_of_graph(self, skewed_graph):
        attrs = StaticAttributes.of(skewed_graph)
        assert attrs.num_nodes == skewed_graph.num_nodes
        assert attrs.num_edges == skewed_graph.num_edges
        assert attrs.avg_out_degree == pytest.approx(skewed_graph.avg_out_degree)
        assert attrs.min_out_degree <= attrs.avg_out_degree <= attrs.max_out_degree


class TestInspector:
    def test_sampling_interval(self, skewed_graph):
        insp = GraphInspector(skewed_graph, sampling_interval=3)
        assert insp.should_sample(0)
        assert not insp.should_sample(1)
        assert not insp.should_sample(2)
        assert insp.should_sample(3)

    def test_observations_between_samples_skipped(self, skewed_graph):
        insp = GraphInspector(skewed_graph, sampling_interval=2)
        insp.observe(0, 100)
        insp.observe(1, 999)  # skipped
        assert insp.workset_size == 100
        assert insp.samples_taken == 1

    def test_default_degree_is_whole_graph(self, skewed_graph):
        insp = GraphInspector(skewed_graph)
        assert insp.avg_out_degree == pytest.approx(skewed_graph.avg_out_degree)

    def test_precise_mode_measures_workset(self, skewed_graph):
        insp = GraphInspector(skewed_graph, monitor_workset_degree=True)
        hubs = np.argsort(skewed_graph.out_degrees)[-5:]
        insp.observe(0, 5, workset_nodes=np.sort(hubs), device=TESLA_C2070)
        assert insp.avg_out_degree > skewed_graph.avg_out_degree
        assert len(insp.consume_overhead_tallies()) > 0
        assert insp.consume_overhead_tallies() == []  # drained

    def test_rejects_bad_interval(self, skewed_graph):
        with pytest.raises(ValueError):
            GraphInspector(skewed_graph, sampling_interval=0)


class TestAdaptivePolicy:
    def test_follows_decision_space(self):
        g = erdos_renyi_graph(100_000, 400_000, seed=0)
        policy = AdaptivePolicy(g, RuntimeConfig(t3_fraction=0.05), device=TESLA_C2070)
        assert policy.choose(0, 10).code == "U_B_QU"          # tiny ws
        assert policy.choose(1, 4000).code == "U_T_QU"        # mid, low deg
        assert policy.choose(2, 50_000).code == "U_T_BM"      # large, low deg

    def test_sampling_freezes_variant(self):
        g = erdos_renyi_graph(50_000, 200_000, seed=0)
        policy = AdaptivePolicy(
            g, RuntimeConfig(sampling_interval=4), device=TESLA_C2070
        )
        first = policy.choose(0, 10)
        # Iterations 1-3 would decide differently but are not sampled.
        assert policy.choose(1, 40_000) == first
        assert policy.choose(2, 40_000) == first
        assert policy.choose(3, 40_000) == first
        assert policy.choose(4, 40_000) != first

    def test_trace_records_switches(self):
        g = erdos_renyi_graph(100_000, 400_000, seed=0)
        policy = AdaptivePolicy(g, device=TESLA_C2070)
        policy.choose(0, 10)
        policy.choose(1, 10)
        policy.choose(2, 50_000)
        assert policy.trace.num_decisions == 3
        assert policy.num_switches == 1
        assert policy.trace.switch_iterations() == [2]

    def test_rebuild_mode_queues_overhead(self):
        g = erdos_renyi_graph(100_000, 400_000, seed=0)
        policy = AdaptivePolicy(
            g, RuntimeConfig(switch_mode="rebuild"), device=TESLA_C2070
        )
        policy.choose(0, 10)        # B_QU
        policy.choose(1, 50_000)    # T_BM: representation switch
        tallies = policy.overhead_tallies(1, 50_000, g.num_nodes, TESLA_C2070)
        assert len(tallies) > 0
        assert tallies[0].name.startswith("switch_rebuild")

    def test_shared_mode_no_overhead(self):
        g = erdos_renyi_graph(100_000, 400_000, seed=0)
        policy = AdaptivePolicy(g, device=TESLA_C2070)
        policy.choose(0, 10)
        policy.choose(1, 50_000)
        assert policy.overhead_tallies(1, 50_000, g.num_nodes, TESLA_C2070) == []

    def test_precise_monitoring_updates_degree(self):
        g = power_law_graph(5000, alpha=1.8, max_degree=200, seed=1)
        policy = AdaptivePolicy(
            g, RuntimeConfig(monitor_workset_degree=True), device=TESLA_C2070
        )
        record = IterationRecord(
            iteration=0, variant="U_B_QU", workset_size=10, processed=10,
            updated=50, edges_scanned=1000, improved_relaxations=50, seconds=1e-6,
        )
        policy.notify(record)
        # 1000 edges / 10 nodes = avg degree 100 for this working set.
        assert policy._avg_degree == pytest.approx(100.0)
        assert len(policy.overhead_tallies(0, 10, g.num_nodes, TESLA_C2070)) > 0


class TestDecisionTrace:
    def _decision(self, i, variant="U_B_QU", switched=False):
        return Decision(
            iteration=i, workset_size=1, avg_out_degree=1.0,
            variant=variant, region="small-ws", switched=switched,
        )

    def test_counts(self):
        trace = DecisionTrace()
        trace.record(self._decision(0))
        trace.record(self._decision(1, "U_T_BM", switched=True))
        assert trace.num_decisions == 2
        assert trace.num_switches == 1
        assert trace.variants_chosen() == {"U_B_QU": 1, "U_T_BM": 1}
