"""Tests for the serving layer: repro.serve sessions, the LRU session
cache, the batch runner's routing/isolation, and the batch manifest."""

import hashlib
import json

import numpy as np
import pytest

from repro.core.runtime import adaptive_run
from repro.errors import RuntimeConfigError
from repro.gpusim.device import GTX_580, TESLA_C2070
from repro.graph.generators import attach_uniform_weights, erdos_renyi_graph
from repro.obs import Observer, RunManifest, observing
from repro.reliability import guarded_query
from repro.serve import (
    BatchQuery,
    BatchRunner,
    GraphSession,
    SessionCache,
    load_queries_jsonl,
)


def _sha(values):
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


def _graph(seed=7):
    return erdos_renyi_graph(200, 900, seed=seed)


class TestBatchQuery:
    def test_from_dict_defaults(self):
        q = BatchQuery.from_dict({"source": 5})
        assert (q.algorithm, q.source, q.mode) == ("bfs", 5, "adaptive")

    def test_round_trip(self):
        q = BatchQuery("sssp", 9, "U_T_BM")
        assert BatchQuery.from_dict(q.to_dict()) == q

    def test_rejects_unknown_fields(self):
        with pytest.raises(RuntimeConfigError, match="unknown"):
            BatchQuery.from_dict({"source": 1, "target": 2})

    def test_requires_source(self):
        with pytest.raises(RuntimeConfigError, match="source"):
            BatchQuery.from_dict({"algorithm": "bfs"})

    @pytest.mark.parametrize("bad", ["5", 5.0, True, None])
    def test_rejects_non_integer_source(self, bad):
        with pytest.raises(RuntimeConfigError, match="integer"):
            BatchQuery.from_dict({"source": bad})


class TestLoadQueriesJsonl:
    def test_loads_queries_skipping_blank_lines(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text('{"source": 1}\n\n{"source": 2, "algorithm": "sssp"}\n')
        queries = load_queries_jsonl(path)
        assert [q.source for q in queries] == [1, 2]
        assert queries[1].algorithm == "sssp"

    def test_bad_json_names_the_line(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text('{"source": 1}\nnot json\n')
        with pytest.raises(RuntimeConfigError, match=":2:"):
            load_queries_jsonl(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(RuntimeConfigError, match="JSON object"):
            load_queries_jsonl(path)

    def test_bad_query_names_the_line(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text('{"source": 1}\n{"algorithm": "bfs"}\n')
        with pytest.raises(RuntimeConfigError, match=":2:"):
            load_queries_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text("\n\n")
        with pytest.raises(RuntimeConfigError, match="no queries"):
            load_queries_jsonl(path)


class TestGraphSession:
    def test_caches_query_independent_artifacts(self):
        session = GraphSession(_graph())
        assert session.digest == session.fingerprint["digest"]
        assert session.num_nodes == 200
        assert session.profile is not None
        # Already clamped: the degenerate T3 < T2 ordering never leaks.
        assert session.thresholds.t3 >= session.thresholds.t2


class TestSessionCache:
    def test_digest_keyed_hits(self):
        cache = SessionCache(capacity=2)
        first = cache.get(_graph())
        # Same content, a different graph object: still one session.
        again = cache.get(_graph())
        assert again is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_eviction_order_is_lru(self):
        cache = SessionCache(capacity=2)
        a = cache.get(_graph(seed=1))
        b = cache.get(_graph(seed=2))
        cache.get(_graph(seed=1))  # touch a: b is now least recent
        cache.get(_graph(seed=3))  # evicts b
        assert cache.evictions == 1
        assert cache.digests() == [a.digest, cache.get(_graph(seed=3)).digest]
        assert b.digest not in cache.digests()

    def test_device_mismatch_is_a_miss(self):
        cache = SessionCache(capacity=2)
        cache.get(_graph(), device=TESLA_C2070)
        swapped = cache.get(_graph(), device=GTX_580)
        assert swapped.device is GTX_580
        assert (cache.hits, cache.misses) == (0, 2)

    def test_capacity_must_be_positive(self):
        with pytest.raises(RuntimeConfigError):
            SessionCache(capacity=0)

    def test_hit_answers_bit_identical_to_cold_ingest(self):
        cache = SessionCache()
        cache.get(_graph())
        warm = BatchRunner(cache.get(_graph())).run([BatchQuery("bfs", 17)])
        cold = BatchRunner(GraphSession(_graph())).run([BatchQuery("bfs", 17)])
        assert cache.hits == 1
        assert warm.queries[0].values_sha256 == cold.queries[0].values_sha256
        assert np.array_equal(warm.queries[0].values, cold.queries[0].values)

    def test_observer_counters(self):
        observer = Observer()
        with observing(observer):
            cache = SessionCache(capacity=1)
            cache.get(_graph(seed=1))
            cache.get(_graph(seed=1))
            cache.get(_graph(seed=2))
        snapshot = observer.metrics.snapshot()
        assert snapshot["serve.cache.hits"]["value"] == 1
        assert snapshot["serve.cache.misses"]["value"] == 2
        assert snapshot["serve.cache.evictions"]["value"] == 1


class TestBatchRunner:
    @pytest.fixture
    def runner(self):
        graph = attach_uniform_weights(_graph(), seed=8)
        return BatchRunner(GraphSession(graph))

    def test_batched_parity_with_single_source(self, runner):
        batch = runner.run([BatchQuery("bfs", 3), BatchQuery("sssp", 3)])
        assert batch.ok_count == 2
        assert all(q.batched for q in batch.queries)
        graph = runner.session.graph
        for result, algorithm in zip(batch.queries, ("bfs", "sssp")):
            single = adaptive_run(graph, algorithm, 3)
            assert result.values_sha256 == _sha(single.values)

    def test_ordered_mode_falls_back(self, runner):
        batch = runner.run([BatchQuery("sssp", 0, "O_T_QU")])
        (result,) = batch.queries
        assert result.ok and not result.batched
        assert batch.fallback_seconds > 0 and batch.batch_seconds == 0

    def test_failures_are_isolated(self, runner):
        batch = runner.run(
            [
                {"algorithm": "bfs", "source": 0},
                {"algorithm": "teleport", "source": 0},
                {"algorithm": "bfs", "source": 9_999},
                {"algorithm": "bfs", "source": 1},
            ]
        )
        ok0, unknown, bad_source, ok1 = batch.queries
        assert ok0.ok and ok1.ok
        assert not unknown.ok and "teleport" in unknown.error
        assert not bad_source.ok and "9999" in bad_source.error
        assert batch.ok_count == 2

    def test_amortization_stats_and_digest(self, runner):
        batch = runner.run([BatchQuery("bfs", s) for s in (0, 7, 50, 120)])
        assert batch.graph_digest == runner.session.digest
        assert batch.launches_saved > 0
        assert batch.readbacks_saved > 0
        assert batch.super_iterations > 0
        doc = batch.result_dict()
        assert doc["kind"] == "batch"
        assert doc["ok"] == 4 and len(doc["queries"]) == 4

    def test_manifest_round_trips(self, runner):
        observer = Observer()
        with observing(observer):
            batch = runner.run([BatchQuery("bfs", 0), BatchQuery("sssp", 5)])
        manifest = runner.to_manifest(batch, observer=observer)
        doc = manifest.to_dict()
        restored = RunManifest.from_dict(json.loads(json.dumps(doc)))
        assert restored.algorithm == "batch"
        assert restored.mode == "batch"
        assert restored.source == -1
        assert restored.result["num_queries"] == 2
        # Per-query decision traces survive, tagged with their query.
        indices = {d["query_index"] for d in restored.decisions}
        assert indices == {0, 1}


class TestGuardedQuery:
    def test_passes_result_through(self):
        result, error = guarded_query(lambda: 42)
        assert (result, error) == (42, None)

    def test_isolates_repro_errors(self):
        def boom():
            raise RuntimeConfigError("bad request")

        observer = Observer()
        with observing(observer):
            result, error = guarded_query(boom, label="query 3")
        assert result is None
        assert "query 3" in error and "bad request" in error
        assert observer.metrics.snapshot()["guard.query_failures"]["value"] == 1

    def test_bugs_still_propagate(self):
        def bug():
            raise ZeroDivisionError

        with pytest.raises(ZeroDivisionError):
            guarded_query(bug)
