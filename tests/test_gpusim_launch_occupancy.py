"""Tests for repro.gpusim.launch and repro.gpusim.occupancy."""

import pytest

from repro.errors import LaunchError
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.occupancy import occupancy


class TestLaunchConfig:
    def test_for_elements_rounds_up(self):
        lc = LaunchConfig.for_elements(1000, 192, TESLA_C2070)
        assert lc.grid_blocks == 6
        assert lc.total_threads == 1152

    def test_for_zero_elements_one_block(self):
        lc = LaunchConfig.for_elements(0, 192, TESLA_C2070)
        assert lc.grid_blocks == 1

    def test_one_block_per_element(self):
        lc = LaunchConfig.one_block_per_element(500, 32, TESLA_C2070)
        assert lc.grid_blocks == 500
        assert lc.threads_per_block == 32

    def test_warps_per_block(self):
        lc = LaunchConfig(1, 192)
        assert lc.warps_per_block(TESLA_C2070) == 6
        assert LaunchConfig(1, 33).warps_per_block(TESLA_C2070) == 2

    def test_total_warps(self):
        assert LaunchConfig(10, 64).total_warps(TESLA_C2070) == 20

    def test_rejects_too_many_threads(self):
        with pytest.raises(LaunchError):
            LaunchConfig(1, 2048).validate(TESLA_C2070)

    def test_rejects_zero_blocks(self):
        with pytest.raises(LaunchError):
            LaunchConfig(0, 32)

    def test_rejects_negative_elements(self):
        with pytest.raises(LaunchError):
            LaunchConfig.for_elements(-1, 32, TESLA_C2070)

    def test_huge_grid_allowed_2d(self):
        # CUDA-4 grids go to 64K x 64K; 4.3M-node graphs need > 64K blocks.
        LaunchConfig(4_300_000, 32).validate(TESLA_C2070)


class TestOccupancy:
    def test_192_threads_full_occupancy(self):
        # The paper's thread-mapping config: 192 threads -> 6 warps/block,
        # 8 blocks/SM = 48 warps = 100 % on Fermi.
        occ = occupancy(TESLA_C2070, 192)
        assert occ.blocks_per_sm == 8
        assert occ.warps_per_sm == 48
        assert occ.occupancy == pytest.approx(1.0)

    def test_small_blocks_limited_by_block_slots(self):
        occ = occupancy(TESLA_C2070, 32)
        assert occ.blocks_per_sm == 8
        assert occ.warps_per_sm == 8
        assert occ.limiter == "blocks"
        assert occ.occupancy == pytest.approx(8 / 48)

    def test_1024_threads_limited_by_threads(self):
        occ = occupancy(TESLA_C2070, 1024)
        assert occ.blocks_per_sm == 1
        assert occ.limiter in ("threads", "warps")

    def test_register_pressure(self):
        light = occupancy(TESLA_C2070, 256, registers_per_thread=16)
        heavy = occupancy(TESLA_C2070, 256, registers_per_thread=63)
        assert heavy.blocks_per_sm < light.blocks_per_sm
        assert heavy.limiter == "registers"

    def test_shared_memory_limit(self):
        occ = occupancy(TESLA_C2070, 256, shared_mem_per_block=48 * 1024)
        assert occ.blocks_per_sm == 1
        assert occ.limiter == "shared_memory"

    def test_rejects_bad_threads(self):
        with pytest.raises(LaunchError):
            occupancy(TESLA_C2070, 0)
        with pytest.raises(LaunchError):
            occupancy(TESLA_C2070, 4096)

    def test_occupancy_monotone_in_registers(self):
        prev = None
        for regs in (16, 24, 32, 48, 63):
            occ = occupancy(TESLA_C2070, 192, registers_per_thread=regs).occupancy
            if prev is not None:
                assert occ <= prev + 1e-12
            prev = occ
