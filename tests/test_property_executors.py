"""Property-based agreement tests across executors: on arbitrary random
graphs, the hybrid executor, direction-optimizing BFS and the adaptive
runtime must all compute identical answers — they differ only in cost."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import adaptive_bfs, adaptive_sssp
from repro.core.hybrid import hybrid_bfs, hybrid_sssp
from repro.graph.builder import from_edge_list
from repro.kernels.dobfs import direction_optimizing_bfs


@st.composite
def graphs_with_source(draw, max_nodes=25, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    weights = draw(st.lists(st.integers(1, 9), min_size=m, max_size=m))
    g = from_edge_list(src, dst, [float(w) for w in weights], num_nodes=n,
                       dedupe=True)
    source = draw(st.integers(0, n - 1))
    return g, source


class TestExecutorAgreement:
    @given(graphs_with_source())
    @settings(max_examples=25, deadline=None)
    def test_hybrid_bfs_agrees(self, gs):
        g, source = gs
        assert np.array_equal(
            hybrid_bfs(g, source).values, adaptive_bfs(g, source).values
        )

    @given(graphs_with_source())
    @settings(max_examples=20, deadline=None)
    def test_hybrid_sssp_agrees(self, gs):
        g, source = gs
        assert np.allclose(
            hybrid_sssp(g, source).values, adaptive_sssp(g, source).values
        )

    @given(graphs_with_source())
    @settings(max_examples=25, deadline=None)
    def test_dobfs_agrees(self, gs):
        g, source = gs
        assert np.array_equal(
            direction_optimizing_bfs(g, source).values,
            adaptive_bfs(g, source).values,
        )

    @given(graphs_with_source())
    @settings(max_examples=15, deadline=None)
    def test_hybrid_schedule_well_formed(self, gs):
        g, source = gs
        r = hybrid_bfs(g, source)
        assert len(r.devices) == r.traversal.num_iterations
        assert r.transitions <= len(r.devices) + 1
        assert r.total_seconds > 0
