"""Tests for repro.gpusim.kernel (tally validation + cost assembly)."""

import pytest

from repro.errors import KernelError
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams, KernelTally
from repro.gpusim.launch import LaunchConfig


def make_tally(**kwargs) -> KernelTally:
    defaults = dict(
        name="k",
        launch=LaunchConfig(100, 192),
        issue_cycles=10_000.0,
        useful_lane_cycles=100_000.0,
        max_block_cycles=200.0,
        mem_transactions=1_000.0,
        active_threads=10_000,
    )
    defaults.update(kwargs)
    return KernelTally(**defaults)


class TestKernelTally:
    def test_rejects_negative_fields(self):
        with pytest.raises(KernelError):
            make_tally(issue_cycles=-1.0)
        with pytest.raises(KernelError):
            make_tally(mem_transactions=-5.0)

    def test_simt_efficiency_bounds(self):
        t = make_tally(issue_cycles=1000.0, useful_lane_cycles=32_000.0)
        assert t.simt_efficiency == pytest.approx(1.0)
        t2 = make_tally(issue_cycles=1000.0, useful_lane_cycles=1000.0)
        assert t2.simt_efficiency == pytest.approx(1 / 32)

    def test_zero_issue_efficiency_one(self):
        assert make_tally(issue_cycles=0.0).simt_efficiency == 1.0

    def test_thread_utilization(self):
        t = make_tally(active_threads=9_600)
        assert t.thread_utilization == pytest.approx(9600 / 19200)


class TestCostModel:
    def test_total_includes_launch_overhead(self):
        cost = CostModel(TESLA_C2070).price(make_tally())
        assert cost.seconds >= TESLA_C2070.kernel_launch_overhead_s
        assert cost.launch_overhead_seconds == TESLA_C2070.kernel_launch_overhead_s

    def test_compute_memory_overlap(self):
        # Total pays max(compute, memory), not the sum.
        model = CostModel(TESLA_C2070)
        cost = model.price(make_tally())
        core = cost.seconds - cost.launch_overhead_seconds - cost.atomic_seconds
        assert core == pytest.approx(max(cost.issue_seconds, cost.memory_seconds))

    def test_atomics_add_serial_time(self):
        model = CostModel(TESLA_C2070)
        quiet = model.price(make_tally())
        noisy = model.price(make_tally(atomics_same_address=100_000.0))
        assert noisy.seconds > quiet.seconds
        assert noisy.atomic_seconds == pytest.approx(
            TESLA_C2070.cycles_to_seconds(100_000 * model.params.atomic_cycles_per_op)
        )

    def test_critical_path_floor(self):
        model = CostModel(TESLA_C2070)
        # One gigantic block cannot be spread across SMs.
        cost = model.price(
            make_tally(issue_cycles=1_000.0, max_block_cycles=1_000_000.0)
        )
        assert cost.issue_seconds >= TESLA_C2070.cycles_to_seconds(1_000_000)

    def test_latency_penalty_for_tiny_kernels(self):
        model = CostModel(TESLA_C2070)
        tiny = make_tally(
            launch=LaunchConfig(1, 32),
            issue_cycles=10.0,
            mem_transactions=1_000.0,
            active_threads=32,
            active_warps=1,
        )
        big = make_tally(
            launch=LaunchConfig(1000, 192),
            issue_cycles=10.0,
            mem_transactions=1_000.0,
            active_threads=192_000,
            active_warps=6000,
        )
        tiny_cost = model.price(tiny)
        big_cost = model.price(big)
        assert tiny_cost.latency_penalty > 1.0
        assert big_cost.latency_penalty == 1.0
        assert tiny_cost.memory_seconds > big_cost.memory_seconds

    def test_latency_penalty_capped(self):
        params = CostParams(max_latency_penalty=8.0)
        model = CostModel(TESLA_C2070, params)
        cost = model.price(
            make_tally(launch=LaunchConfig(1, 32), active_warps=1, active_threads=1)
        )
        assert cost.latency_penalty <= 8.0

    def test_block_dispatch_charged(self):
        model = CostModel(TESLA_C2070)
        few = model.price(make_tally(launch=LaunchConfig(10, 192)))
        many = model.price(make_tally(launch=LaunchConfig(100_000, 192)))
        assert many.issue_seconds > few.issue_seconds

    def test_params_override(self):
        params = CostParams().with_overrides(atomic_cycles_per_op=50.0)
        assert params.atomic_cycles_per_op == 50.0
        assert CostParams().atomic_cycles_per_op != 50.0

    def test_more_issue_cycles_cost_more(self):
        model = CostModel(TESLA_C2070)
        cheap = model.price(make_tally(issue_cycles=1e4, mem_transactions=0.0))
        dear = model.price(make_tally(issue_cycles=1e6, mem_transactions=0.0))
        assert dear.seconds > cheap.seconds
