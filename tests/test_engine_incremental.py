"""Incremental recompute: warm-started traversals after mutations.

The headline contract — the acceptance criterion for the dynamic-graph
layer — is SHA-256 parity: for cc, bfs and sssp, a warm-started
:func:`run_incremental` on the mutated graph produces values
*bit-identical* to a from-scratch :func:`adaptive_run` on the compacted
graph, across seeded sequences of insert and delete batches.  The
randomized stress below chains three rounds of insert-then-delete per
algorithm; the unit tests pin the seeding rules (insert-only deltas
invalidate nothing; deletes reset the tight-edge closure / the touched
components) and the validation surface.
"""

import hashlib

import numpy as np
import pytest

from repro.core.runtime import adaptive_run
from repro.engine.incremental import (
    IncrementalBfsSpec,
    IncrementalCcSpec,
    IncrementalSsspSpec,
    run_incremental,
)
from repro.errors import KernelError
from repro.graph.dynamic import DeltaOverlayGraph, EdgeBatch
from repro.graph.generators import attach_uniform_weights, power_law_graph
from repro.obs import Observer, observing


def _sha(values) -> str:
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


def _stress_graph(weighted: bool):
    g = power_law_graph(300, alpha=2.0, min_degree=2, seed=17, name="stress")
    return attach_uniform_weights(g, seed=18) if weighted else g


def _insert_batch(rng, overlay, count, weighted):
    n = overlay.num_nodes
    pairs, weights = [], []
    while len(pairs) < count:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            pairs.append((u, v))
            weights.append(float(rng.integers(1, 8)))
    return EdgeBatch.inserts(pairs, weights if weighted else None)


def _delete_batch(rng, current, count):
    """Deletes drawn from the *live* edges of the current epoch."""
    src = np.repeat(
        np.arange(current.num_nodes, dtype=np.int64), current.out_degrees
    )
    picks = rng.choice(current.num_edges, size=count, replace=False)
    return EdgeBatch.deletes(
        [(int(src[i]), int(current.col_indices[i])) for i in picks]
    )


class TestIncrementalShaParity:
    @pytest.mark.parametrize("algorithm", ["cc", "bfs", "sssp"])
    def test_chained_insert_delete_rounds_stay_bit_identical(self, algorithm):
        weighted = algorithm == "sssp"
        graph = _stress_graph(weighted)
        source = None if algorithm == "cc" else 0
        rng = np.random.default_rng(5)
        previous = adaptive_run(graph, algorithm, source)
        saw_affected = False

        for round_no in range(3):
            for kind in ("insert", "delete"):
                overlay = DeltaOverlayGraph(graph)
                if kind == "insert":
                    batch = _insert_batch(rng, overlay, 6, weighted)
                else:
                    batch = _delete_batch(rng, graph, 6)
                delta = overlay.apply(batch, mode="lenient")
                graph = overlay.materialize()
                incremental = run_incremental(
                    graph, algorithm, previous, delta, source=source
                )
                scratch = adaptive_run(graph, algorithm, source)
                assert _sha(incremental.values) == _sha(scratch.values), (
                    f"{algorithm} diverged on {kind} round {round_no}"
                )
                saw_affected = saw_affected or incremental.affected_nodes > 0
                previous = incremental
        # The soak only means something if deletes actually invalidated
        # state somewhere along the way.
        assert saw_affected

    def test_overlay_accepted_directly(self):
        graph = _stress_graph(False)
        previous = adaptive_run(graph, "bfs", 0)
        overlay = DeltaOverlayGraph(graph)
        delta = overlay.apply(EdgeBatch.inserts([(5, 200), (200, 7)]))
        incremental = run_incremental(overlay, "bfs", previous, delta, source=0)
        scratch = adaptive_run(overlay.materialize(), "bfs", 0)
        assert _sha(incremental.values) == _sha(scratch.values)

    def test_grow_extends_previous_values(self):
        graph = _stress_graph(False)
        previous = adaptive_run(graph, "cc", None)
        overlay = DeltaOverlayGraph(graph)
        delta = overlay.apply(
            EdgeBatch.from_docs(
                enumerate(
                    [
                        {"op": "grow", "nodes": 5},
                        {"op": "insert", "u": 302, "v": 0},
                    ],
                    start=1,
                )
            )
        )
        mutated = overlay.materialize()
        incremental = run_incremental(mutated, "cc", previous, delta)
        scratch = adaptive_run(mutated, "cc", None)
        assert _sha(incremental.values) == _sha(scratch.values)
        # 302 joined node 0's component; 301/303/304 stay isolated.
        assert incremental.values[302] == incremental.values[0]


class TestSeedingRules:
    def test_insert_only_delta_invalidates_nothing(self):
        graph = _stress_graph(False)
        previous = adaptive_run(graph, "bfs", 0)
        overlay = DeltaOverlayGraph(graph)
        delta = overlay.apply(EdgeBatch.inserts([(3, 9), (11, 4)]), mode="lenient")
        result = run_incremental(
            overlay.materialize(), "bfs", previous, delta, source=0
        )
        assert result.affected_nodes == 0
        assert result.seed_frontier_size <= 2

    def test_delete_resets_touched_cc_components_only(self):
        # Two components: a chain 0-1-2 and an isolated pair 3-4.
        from repro.graph.builder import from_edge_list

        graph = from_edge_list(
            [0, 1, 1, 2, 3, 4], [1, 0, 2, 1, 4, 3], num_nodes=5, name="two-cc"
        )
        previous = adaptive_run(graph, "cc", None, assume_symmetric=True)
        overlay = DeltaOverlayGraph(graph)
        delta = overlay.apply(EdgeBatch.deletes([(1, 2), (2, 1)]))
        mutated = overlay.materialize()
        result = run_incremental(
            mutated, "cc", previous, delta, assume_symmetric=True
        )
        # Only the chain's component is re-derived; 3/4 never re-enter.
        assert result.affected_nodes == 3
        scratch = adaptive_run(mutated, "cc", None, assume_symmetric=True)
        assert _sha(result.values) == _sha(scratch.values)

    def test_deleting_tight_edge_reseeds_downstream(self):
        from repro.graph.builder import from_edge_list

        # 0 -> 1 -> 2 -> 3 plus a slow detour 0 -> 4 -> 2.
        graph = from_edge_list(
            [0, 1, 2, 0, 4], [1, 2, 3, 4, 2], num_nodes=5, name="detour"
        )
        previous = adaptive_run(graph, "bfs", 0)
        overlay = DeltaOverlayGraph(graph)
        delta = overlay.apply(EdgeBatch.deletes([(1, 2)]))
        mutated = overlay.materialize()
        result = run_incremental(mutated, "bfs", previous, delta, source=0)
        # 2 and 3 sat on the deleted tight path; they are re-derived
        # through the detour, one hop longer each.
        assert result.affected_nodes == 2
        assert result.values[2] == 2 and result.values[3] == 3
        scratch = adaptive_run(mutated, "bfs", 0)
        assert _sha(result.values) == _sha(scratch.values)

    def test_warm_specs_price_seed_scan_and_stay_resident(self):
        for cls in (IncrementalCcSpec, IncrementalBfsSpec, IncrementalSsspSpec):
            assert cls.graph_resident is True
        graph = _stress_graph(False)
        spec = IncrementalBfsSpec(
            np.zeros(graph.num_nodes, dtype=np.int64),
            np.array([0], dtype=np.int64),
            seed_host_seconds=0.25,
        )
        _, host_seconds = spec.prepare(graph)
        assert host_seconds == 0.25

    def test_incremental_observed(self):
        graph = _stress_graph(False)
        previous = adaptive_run(graph, "bfs", 0)
        overlay = DeltaOverlayGraph(graph)
        delta = overlay.apply(EdgeBatch.inserts([(3, 9)]), mode="lenient")
        observer = Observer()
        with observing(observer):
            run_incremental(
                overlay.materialize(), "bfs", previous, delta, source=0
            )
        snap = observer.metrics.snapshot()
        assert snap["dynamic.incremental_runs"]["value"] == 1
        assert snap["dynamic.seed_frontier"]["count"] == 1
        assert any(
            s["name"] == "incremental_bfs" for s in observer.spans.to_dicts()
        )


class TestIncrementalValidation:
    def _setup(self, weighted=False):
        graph = _stress_graph(weighted)
        previous = adaptive_run(graph, "bfs", 0)
        overlay = DeltaOverlayGraph(graph)
        delta = overlay.apply(EdgeBatch.inserts([(1, 2)]), mode="lenient")
        return overlay.materialize(), previous, delta

    def test_unknown_algorithm_rejected(self):
        graph, previous, delta = self._setup()
        with pytest.raises(KernelError, match="incremental recompute supports"):
            run_incremental(graph, "pagerank", previous, delta)

    def test_distance_algorithms_require_source(self):
        graph, previous, delta = self._setup()
        with pytest.raises(KernelError, match="requires a source"):
            run_incremental(graph, "bfs", previous, delta)

    def test_previous_must_match_source(self):
        graph, previous, delta = self._setup()
        with pytest.raises(KernelError, match="must be 0"):
            run_incremental(graph, "bfs", previous, delta, source=1)

    def test_sssp_requires_weights(self):
        graph, previous, delta = self._setup(weighted=False)
        with pytest.raises(KernelError, match="weights"):
            run_incremental(graph, "sssp", previous, delta, source=0)

    def test_oversized_previous_rejected(self):
        graph, _, delta = self._setup()
        too_big = np.zeros(graph.num_nodes + 10, dtype=np.int64)
        with pytest.raises(KernelError, match="only"):
            run_incremental(graph, "bfs", too_big, delta, source=0)

    def test_previous_needs_values(self):
        graph, _, delta = self._setup()
        with pytest.raises(KernelError, match="values"):
            run_incremental(graph, "bfs", object(), delta, source=0)
