"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    attach_uniform_weights,
    balanced_tree,
    chain_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
    regular_outdegree_graph,
    rmat_graph,
    road_network,
    sample_power_law_degrees,
    star_graph,
)
from repro.graph.properties import bfs_levels, is_symmetric, pseudo_diameter


class TestDeterministicGraphs:
    def test_chain_structure(self):
        g = chain_graph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 8  # 4 undirected edges
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3, 4]

    def test_chain_single_node(self):
        assert chain_graph(1).num_edges == 0

    def test_star_structure(self):
        g = star_graph(10)
        deg = g.out_degrees
        assert deg[0] == 9
        assert np.all(deg[1:] == 1)

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.num_edges == 20
        assert np.all(g.out_degrees == 4)

    def test_balanced_tree_levels(self):
        g = balanced_tree(2, 3)
        assert g.num_nodes == 15
        levels = bfs_levels(g, 0)
        assert levels.max() == 3
        assert (levels == 3).sum() == 8  # leaves

    def test_balanced_tree_branching_one(self):
        g = balanced_tree(1, 4)
        assert g.num_nodes == 5  # degenerate chain

    def test_grid_dimensions(self):
        g = grid_graph(4, 3)
        assert g.num_nodes == 12
        # 2*(W-1)*H + 2*W*(H-1) directed arcs
        assert g.num_edges == 2 * 3 * 3 + 2 * 4 * 2


class TestRoadNetwork:
    def test_connected(self):
        g = road_network(500, seed=0)
        assert (bfs_levels(g, 0) >= 0).all()

    def test_symmetric(self):
        g = road_network(300, seed=1)
        assert is_symmetric(g)

    def test_sparse_low_degree(self):
        g = road_network(2000, seed=2)
        assert g.avg_out_degree < 4.0
        assert g.out_degrees.max() <= 12

    def test_large_diameter(self):
        g = road_network(2000, seed=3)
        # Road networks have diameter ~ O(sqrt(n)) or worse.
        assert pseudo_diameter(g, seed=0) > 20

    def test_deterministic(self):
        assert road_network(400, seed=9) == road_network(400, seed=9)


class TestRegularOutdegree:
    def test_modal_fraction(self):
        g = regular_outdegree_graph(5000, modal_degree=10, modal_fraction=0.7, seed=0)
        deg = g.out_degrees
        # Dedupe can shave a few edges; allow slack around 70 %.
        frac_modal = float((deg >= 9).sum()) / deg.size
        assert 0.6 < frac_modal < 0.85

    def test_max_degree_bounded(self):
        g = regular_outdegree_graph(1000, modal_degree=10, seed=1)
        assert g.out_degrees.max() <= 10

    def test_avg_degree(self):
        g = regular_outdegree_graph(5000, modal_degree=10, modal_fraction=0.7, seed=2)
        assert 7.0 < g.avg_out_degree < 9.5


class TestPowerLaw:
    def test_degree_sampler_bounds(self):
        rng = np.random.default_rng(0)
        deg = sample_power_law_degrees(
            10_000, alpha=2.0, min_degree=1, max_degree=100, rng=rng
        )
        assert deg.min() >= 1
        assert deg.max() <= 100

    def test_degree_sampler_heavy_tail(self):
        rng = np.random.default_rng(0)
        deg = sample_power_law_degrees(
            50_000, alpha=2.0, min_degree=1, max_degree=1000, rng=rng
        )
        # Heavy tail: the max should far exceed the mean.
        assert deg.max() > 10 * deg.mean()

    def test_sampler_rejects_bad_range(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GraphError):
            sample_power_law_degrees(10, alpha=2.0, min_degree=5, max_degree=2, rng=rng)

    def test_graph_respects_max_degree(self):
        g = power_law_graph(2000, alpha=2.0, max_degree=50, seed=3)
        assert g.out_degrees.max() <= 50

    def test_symmetric_option(self):
        g = power_law_graph(500, alpha=2.0, max_degree=30, symmetric=True, seed=4)
        assert is_symmetric(g)

    def test_skewed_indegree(self):
        g = power_law_graph(3000, alpha=2.0, max_degree=50, in_degree_skew=1.0, seed=5)
        indeg = g.reverse().out_degrees
        assert indeg.max() > 5 * max(1.0, indeg.mean())

    def test_deterministic(self):
        a = power_law_graph(300, alpha=2.0, max_degree=40, seed=6)
        b = power_law_graph(300, alpha=2.0, max_degree=40, seed=6)
        assert a == b


class TestRmat:
    def test_node_count_power_of_two(self):
        g = rmat_graph(8, edge_factor=4, seed=0)
        assert g.num_nodes == 256

    def test_explicit_num_nodes(self):
        g = rmat_graph(10, edge_factor=4, seed=1, num_nodes=700)
        assert g.num_nodes == 700

    def test_skewed_degrees(self):
        g = rmat_graph(12, edge_factor=8, seed=2)
        deg = g.out_degrees
        assert deg.max() > 5 * max(1.0, deg.mean())

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GraphError):
            rmat_graph(6, a=0.9, b=0.2, c=0.2, seed=0)

    def test_rejects_huge_scale(self):
        with pytest.raises(GraphError):
            rmat_graph(31)


class TestWattsStrogatz:
    def test_ring_lattice_unrewired(self):
        from repro.graph.generators import watts_strogatz_graph

        g = watts_strogatz_graph(100, k=4, rewire_prob=0.0, seed=0)
        assert np.all(g.out_degrees == 4)
        assert is_symmetric(g)

    def test_rewiring_collapses_diameter(self):
        from repro.graph.generators import watts_strogatz_graph

        regular = watts_strogatz_graph(2000, k=4, rewire_prob=0.0, seed=1)
        small_world = watts_strogatz_graph(2000, k=4, rewire_prob=0.1, seed=1)
        assert pseudo_diameter(small_world, seed=0) < 0.5 * pseudo_diameter(
            regular, seed=0
        )

    def test_connected_at_low_rewiring(self):
        from repro.graph.generators import watts_strogatz_graph

        g = watts_strogatz_graph(500, k=6, rewire_prob=0.05, seed=2)
        assert (bfs_levels(g, 0) >= 0).mean() > 0.99

    def test_rejects_odd_k(self):
        from repro.graph.generators import watts_strogatz_graph

        with pytest.raises(GraphError, match="even"):
            watts_strogatz_graph(10, k=3)

    def test_rejects_k_too_large(self):
        from repro.graph.generators import watts_strogatz_graph

        with pytest.raises(GraphError):
            watts_strogatz_graph(4, k=4)

    def test_deterministic(self):
        from repro.graph.generators import watts_strogatz_graph

        a = watts_strogatz_graph(300, k=4, rewire_prob=0.2, seed=3)
        b = watts_strogatz_graph(300, k=4, rewire_prob=0.2, seed=3)
        assert a == b


class TestErdosRenyi:
    def test_edge_count_close(self):
        g = erdos_renyi_graph(1000, 5000, seed=0)
        # dedupe/self-loop removal shaves a small fraction
        assert 4500 <= g.num_edges <= 5000

    def test_no_self_loops(self):
        g = erdos_renyi_graph(50, 500, seed=1)
        src = np.repeat(np.arange(50), g.out_degrees)
        assert not np.any(src == g.col_indices)


class TestAttachWeights:
    def test_range(self, random_graph):
        g = attach_uniform_weights(random_graph, low=2, high=9, seed=0)
        assert g.weights.min() >= 2
        assert g.weights.max() <= 9

    def test_integer_weights(self, random_graph):
        g = attach_uniform_weights(random_graph, integer=True, seed=0)
        assert np.all(g.weights == np.round(g.weights))

    def test_float_weights(self, random_graph):
        g = attach_uniform_weights(random_graph, integer=False, seed=0)
        assert not np.all(g.weights == np.round(g.weights))

    def test_rejects_bad_range(self, random_graph):
        with pytest.raises(GraphError):
            attach_uniform_weights(random_graph, low=5, high=1)

    def test_preserves_structure(self, random_graph):
        g = attach_uniform_weights(random_graph, seed=0)
        assert np.array_equal(g.col_indices, random_graph.col_indices)
