"""Tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.utils.stats import (
    Histogram,
    degree_histogram_bins,
    geometric_mean,
    histogram,
    summarize,
)


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.mean == 3
        assert s.median == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_value(self):
        s = summarize([7.0])
        assert s.minimum == s.maximum == s.mean == s.median == 7.0
        assert s.std == 0.0

    def test_percentiles_ordered(self):
        s = summarize(np.arange(1000))
        assert s.median <= s.p90 <= s.p99 <= s.maximum

    def test_as_dict_keys(self):
        d = summarize([1, 2]).as_dict()
        assert set(d) == {"count", "min", "max", "mean", "std", "median", "p90", "p99"}


class TestDegreeHistogramBins:
    def test_geometric_growth(self):
        edges = degree_histogram_bins(100)
        assert edges[0] == 0
        assert edges[-1] == 101
        widths = np.diff(edges)
        assert np.all(widths > 0)

    def test_zero_max_degree(self):
        edges = degree_histogram_bins(0)
        assert len(edges) >= 2

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            degree_histogram_bins(-1)

    def test_covers_max(self):
        for max_deg in [1, 5, 33, 1188]:
            edges = degree_histogram_bins(max_deg)
            assert edges[-1] == max_deg + 1


class TestHistogram:
    def test_counts_sum_to_total(self):
        values = [0, 1, 1, 2, 5, 9]
        h = histogram(values, [0, 1, 2, 10])
        assert h.total == len(values)

    def test_fractions_sum_to_one(self):
        h = histogram([1, 2, 3, 4], [0, 2, 5])
        assert abs(sum(h.fractions) - 1.0) < 1e-12

    def test_empty_histogram_fractions(self):
        h = Histogram(edges=(0.0, 1.0), counts=(0,))
        assert h.fractions == (0.0,)

    def test_bin_labels_unit_width(self):
        h = Histogram(edges=(0.0, 1.0, 2.0, 4.0), counts=(1, 2, 3))
        assert h.bin_labels() == ("0", "1", "2-3")


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_all_equal(self):
        assert geometric_mean([3, 3, 3]) == pytest.approx(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
