"""Integration: the whole stack must behave consistently on every
simulated device preset (thresholds and times shift, answers do not)."""

import numpy as np
import pytest

from repro.core import adaptive_bfs, adaptive_sssp
from repro.cpu import cpu_bfs, cpu_dijkstra
from repro.core.tuning import derive_t2
from repro.graph.generators import attach_uniform_weights, power_law_graph
from repro.gpusim.device import device_registry
from repro.kernels import run_bfs

DEVICES = sorted(device_registry())


@pytest.fixture(scope="module")
def workload():
    g = attach_uniform_weights(
        power_law_graph(20_000, alpha=1.9, max_degree=200, seed=17), seed=18
    )
    src = int(np.argmax(g.out_degrees))
    return g, src


@pytest.mark.parametrize("device_key", DEVICES)
class TestEveryDevice:
    def test_adaptive_bfs_correct(self, device_key, workload):
        g, src = workload
        device = device_registry()[device_key]
        result = adaptive_bfs(g, src, device=device)
        assert np.array_equal(result.values, cpu_bfs(g, src).levels)

    def test_adaptive_sssp_correct(self, device_key, workload):
        g, src = workload
        device = device_registry()[device_key]
        result = adaptive_sssp(g, src, device=device)
        assert np.allclose(result.values, cpu_dijkstra(g, src).distances)

    def test_thresholds_follow_device(self, device_key, workload):
        g, src = workload
        device = device_registry()[device_key]
        result = adaptive_bfs(g, src, device=device)
        assert result.thresholds.t1 == float(device.warp_size)
        assert result.thresholds.t2 == derive_t2(device)

    def test_static_variant_correct(self, device_key, workload):
        g, src = workload
        device = device_registry()[device_key]
        result = run_bfs(g, src, "U_B_QU", device=device)
        assert np.array_equal(result.values, cpu_bfs(g, src).levels)


class TestDeviceOrdering:
    def test_bigger_device_is_faster(self, workload):
        """More SMs and bandwidth must not slow a bandwidth/compute-bound
        traversal down."""
        g, src = workload
        reg = device_registry()
        big = adaptive_sssp(g, src, device=reg["gtx580"]).total_seconds
        small = adaptive_sssp(g, src, device=reg["quadro2000"]).total_seconds
        assert big < small
