"""Chaos soaks over the serve loop — in-process and through the CLI.

Acceptance for the resilient serving layer: a seeded 200-query soak
under an aggressive fault plan finishes with zero crashes, exactly one
response per query, and SHA parity between every successful answer and
a fault-free single-source run.  The subprocess tests additionally pin
the stdin/stdout protocol: every input line gets exactly one JSON
response object, nothing tracebacks, and exit codes follow the CLI
contract.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.graph.generators import attach_uniform_weights, erdos_renyi_graph
from repro.graph.io import write_dimacs
from repro.reliability import FaultPlan
from repro.serve.chaos import (
    default_chaos_plan,
    default_shard_chaos_plan,
    run_chaos,
    run_shard_chaos,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _graph_file(tmp_path):
    g = attach_uniform_weights(erdos_renyi_graph(60, 300, seed=1), seed=2)
    path = tmp_path / "little.gr"
    write_dimacs(g, path)
    return str(path)


class TestChaosSoak:
    def test_default_plan_is_seeded_and_aggressive(self):
        plan = default_chaos_plan(7)
        assert plan.seed == 7
        assert not plan.is_empty
        assert plan == default_chaos_plan(7)

    def test_two_hundred_query_soak_passes(self):
        report = run_chaos(num_queries=200, num_nodes=300, seed=3)
        assert report.passed, report.violations
        assert report.duplicate_responses == 0
        assert report.missing_responses == 0
        assert report.sha_mismatches == 0
        assert report.serve.answered == 200
        # The soak is only meaningful if chaos actually happened.
        assert report.faults_injected > 0
        assert report.serve.ok > 0

    def test_soak_is_deterministic(self):
        first = run_chaos(num_queries=40, num_nodes=200, seed=11)
        second = run_chaos(num_queries=40, num_nodes=200, seed=11)
        # Wall-clock latency is real elapsed time; everything else —
        # outcomes, fault counts, simulated timing — replays exactly.
        a, b = first.result_dict(), second.result_dict()
        a.pop("latency_wall_s"), b.pop("latency_wall_s")
        assert a == b

    def test_drain_scheduler_soak_passes(self):
        report = run_chaos(
            num_queries=40, num_nodes=200, seed=5, scheduler="drain"
        )
        assert report.passed, report.violations

    def test_heavy_fault_plan_still_exactly_once(self):
        plan = FaultPlan(
            seed=23,
            launch_failure_rate=0.15,
            memory_fault_rate=0.15,
            latency_spike_rate=0.2,
            latency_spike_factor=6.0,
        )
        report = run_chaos(
            num_queries=60,
            num_nodes=200,
            seed=23,
            fault_plan=plan,
            deadline_s=2.0,
            queue_capacity=12,
        )
        # Under this much pressure queries may shed, miss deadlines or
        # error — but never crash, duplicate or silently vanish.
        assert report.passed, report.violations
        assert report.serve.answered == 60


class TestShardChaosSoak:
    def test_default_shard_plan_is_seeded_and_lossy(self):
        plan = default_shard_chaos_plan(9)
        assert plan.seed == 9
        assert plan.device_loss_rate > 0
        assert plan == default_shard_chaos_plan(9)

    def test_device_loss_soak_passes(self):
        report = run_shard_chaos(
            num_queries=8, num_nodes=400, num_devices=4, seed=1
        )
        assert report.passed, report.violations
        assert report.sha_mismatches == 0
        assert report.unattributed_faults == 0
        # The soak is only meaningful if devices actually died.
        assert report.device_losses > 0

    def test_shard_soak_is_deterministic(self):
        a = run_shard_chaos(num_queries=4, num_nodes=300, seed=6)
        b = run_shard_chaos(num_queries=4, num_nodes=300, seed=6)
        assert a.result_dict() == b.result_dict()

    def test_shard_chaos_subcommand(self, capsys):
        rc = main(["chaos", "--devices", "4", "--queries", "6",
                   "--nodes", "300", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "device losses" in out


class TestChaosCommand:
    def test_chaos_subcommand_passes(self, capsys):
        rc = main(["chaos", "--queries", "24", "--nodes", "200",
                   "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "faults injected" in out

    def test_chaos_manifest(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        rc = main(["chaos", "--queries", "16", "--nodes", "200",
                   "--seed", "4", "--manifest", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["algorithm"] == "serve"
        assert doc["result"]["kind"] == "chaos"
        assert doc["result"]["passed"] is True
        assert doc["result"]["num_queries"] == 16


class TestServeSubprocessSoak:
    """The real thing: ``repro serve`` as a child process, JSONL on
    stdin, seeded faults and tight deadlines from the flags."""

    def _run_serve(self, tmp_path, lines, *extra_args):
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--file", _graph_file(tmp_path), *extra_args,
        ]
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            cmd, input="\n".join(lines) + "\n", capture_output=True,
            text=True, env=env, timeout=300,
        )

    def test_faulty_soak_no_crash_exactly_once(self, tmp_path):
        queries = [
            json.dumps({
                "algorithm": "bfs" if i % 2 else "sssp",
                "source": i % 60,
                "priority": i % 3,
            })
            for i in range(24)
        ]
        plan = json.dumps({
            "seed": 9,
            "launch_failure_rate": 0.05,
            "memory_fault_rate": 0.08,
            "latency_spike_rate": 0.1,
        })
        proc = self._run_serve(
            tmp_path, queries,
            "--fault-plan", plan, "--deadline-s", "30",
            "--queue-capacity", "64", "--batch-size", "8",
        )
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr
        answers = [json.loads(line) for line in proc.stdout.splitlines()
                   if line.strip()]
        # Exactly one response per input line, no duplicates.
        assert sorted(a["line"] for a in answers) == list(range(1, 25))
        for doc in answers:
            assert doc["path"] in ("batch", "fallback", "shed",
                                   "deadline", "error")
            if doc["ok"]:
                assert doc["values_sha256"]
            else:
                assert doc["error"]
        assert "slo:" in proc.stderr

    def test_tight_deadlines_and_tiny_queue_shed_explicitly(self, tmp_path):
        queries = [json.dumps({"algorithm": "bfs", "source": i})
                   for i in range(12)]
        proc = self._run_serve(
            tmp_path, queries,
            "--queue-capacity", "2", "--batch-size", "2",
        )
        assert proc.returncode == 0, proc.stderr
        answers = [json.loads(line) for line in proc.stdout.splitlines()
                   if line.strip()]
        assert len(answers) == 12
        assert any(a["path"] == "shed" for a in answers)
        assert all(a["ok"] or a["error"] for a in answers)

    def test_malformed_lines_answered_never_fatal(self, tmp_path):
        lines = [
            json.dumps({"algorithm": "bfs", "source": 0}),
            "not json at all",
            json.dumps({"algorithm": "bfs", "source": 9999}),
            json.dumps({"algorithm": "bfs", "source": 1}),
        ]
        proc = self._run_serve(tmp_path, lines)
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr
        answers = [json.loads(line) for line in proc.stdout.splitlines()
                   if line.strip()]
        by_line = {a["line"]: a for a in answers}
        assert by_line[1]["ok"]
        assert not by_line[2]["ok"]
        assert not by_line[3]["ok"] and "out of range" in by_line[3]["error"]
        assert by_line[4]["ok"]

    def test_chaos_tool_wrapper(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "chaos_serve.py"),
             "--queries", "12", "--nodes", "150", "--seed", "6"],
            capture_output=True, text=True, timeout=300,
            env={"PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "PASS" in proc.stdout


class TestDynamicServeCli:
    """Mutation streams through the CLI: ``repro mutate``, interleaved
    mutation lines on ``repro serve --mutations`` stdin, and the
    mutating chaos soak."""

    def _mutations_file(self, tmp_path):
        path = tmp_path / "muts.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps({"op": "grow", "nodes": 2}),
                    json.dumps({"op": "insert", "u": 60, "v": 1, "weight": 2.0}),
                    json.dumps({"op": "insert", "u": 61, "v": 2, "weight": 1.0}),
                ]
            )
            + "\n"
        )
        return str(path)

    def test_mutate_subcommand_parity_and_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "mutate.json"
        rc = main([
            "mutate", "--file", _graph_file(tmp_path),
            "--mutations", self._mutations_file(tmp_path),
            "--lenient-io", "--algorithm", "bfs", "--source", "0",
            "--manifest", str(manifest),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sha parity" in out and "PASS" in out
        doc = json.loads(manifest.read_text())
        assert doc["mode"] == "dynamic"
        assert doc["result"]["kind"] == "mutate"
        assert doc["result"]["graph_epoch"] == 1
        assert doc["result"]["incremental"]["parity"] is True
        assert doc["result"]["mutation_events"][0]["inserted"] == 2

    def test_mutate_bad_batch_is_line_numbered_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"op": "delete", "u": 0, "v": 59}) + "\n")
        rc = main([
            "mutate", "--file", _graph_file(tmp_path),
            "--mutations", str(bad), "--strict-io",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "bad.jsonl:1:" in err and "missing edge" in err

    def test_serve_mutations_stream_exactly_once_with_epochs(self, tmp_path):
        lines = [
            json.dumps({"algorithm": "bfs", "source": 0}),            # 1
            json.dumps({"op": "insert", "u": 0, "v": 45}),            # 2
            json.dumps({"op": "frobnicate"}),                         # 3
            json.dumps({"algorithm": "bfs", "source": 0}),            # 4
            json.dumps({"algorithm": "sssp", "source": 3}),           # 5
        ]
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--file", _graph_file(tmp_path), "--mutations",
             "--lenient-io", "--batch-size", "1"],
            input="\n".join(lines) + "\n", capture_output=True,
            text=True, timeout=300,
            env={"PYTHONPATH": str(REPO_ROOT / "src"),
                 "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr
        docs = [json.loads(line) for line in proc.stdout.splitlines()
                if line.strip()]
        answers = {d["line"]: d for d in docs if "line" in d and d["line"]}
        events = [d for d in docs if d.get("mutation")]
        # Exactly one response per query line (1, 4, 5); the malformed
        # mutation line answers with a line-numbered format error.
        assert sorted(answers) == [1, 3, 4, 5]
        assert answers[1]["ok"] and answers[1]["graph_epoch"] == 0
        assert not answers[3]["ok"]
        assert "unknown mutation op" in answers[3]["error"]
        for line in (4, 5):
            assert answers[line]["ok"]
            assert answers[line]["graph_epoch"] == 1
        # The applied batch surfaced as exactly one mutation event.
        assert len(events) == 1
        assert events[0]["ok"] and events[0]["edges_inserted"] == 1
        assert events[0]["old_digest"] != events[0]["new_digest"]
        assert "graph epoch 1" in proc.stderr
        assert "cache patches 1" in proc.stderr

    def test_chaos_mutations_subcommand(self, capsys):
        rc = main(["chaos", "--queries", "30", "--nodes", "200",
                   "--seed", "5", "--mutations", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "graph epoch" in out
        assert "digest mismatches" in out
