"""Tests for the hybrid CPU-GPU executor (extension: Hong et al. [13])."""

import numpy as np
import pytest

from repro.core import HybridConfig, hybrid_bfs, hybrid_sssp
from repro.cpu import cpu_bfs, cpu_dijkstra
from repro.errors import KernelError
from repro.graph.generators import (
    attach_uniform_weights,
    chain_graph,
    erdos_renyi_graph,
    power_law_graph,
    road_network,
)
from repro.gpusim.device import TESLA_C2070


class TestCorrectness:
    def test_bfs_matches_cpu(self, random_graph):
        r = hybrid_bfs(random_graph, 0)
        assert np.array_equal(r.values, cpu_bfs(random_graph, 0).levels)

    def test_sssp_matches_dijkstra(self, random_weighted):
        r = hybrid_sssp(random_weighted, 0)
        assert np.allclose(r.values, cpu_dijkstra(random_weighted, 0).distances)

    def test_sssp_requires_weights(self, random_graph):
        with pytest.raises(KernelError, match="weighted"):
            hybrid_sssp(random_graph, 0)

    def test_bad_source(self, random_graph):
        with pytest.raises(Exception):
            hybrid_bfs(random_graph, 10**9)

    def test_max_iterations(self):
        g = chain_graph(100)
        with pytest.raises(KernelError, match="exceeded"):
            hybrid_bfs(g, 0, max_iterations=2)


class TestDeviceSchedule:
    def test_devices_per_iteration(self, random_graph):
        r = hybrid_bfs(random_graph, 0)
        assert len(r.devices) == r.traversal.num_iterations
        assert set(r.devices) <= {"cpu", "gpu"}
        assert r.cpu_iterations + r.gpu_iterations == len(r.devices)

    def test_tiny_frontiers_go_to_cpu(self):
        # A chain's frontier is always one node: pure CPU territory.
        g = chain_graph(200)
        r = hybrid_bfs(g, 0)
        assert r.cpu_iterations > 0.9 * len(r.devices)

    def test_huge_frontiers_go_to_gpu(self):
        g = power_law_graph(50_000, alpha=1.8, max_degree=400, seed=3)
        src = int(np.argmax(g.out_degrees))
        r = hybrid_bfs(g, src)
        assert r.gpu_iterations >= 1
        # The peak-frontier iteration must be on the GPU.
        peak = max(range(len(r.devices)),
                   key=lambda i: r.traversal.iterations[i].workset_size)
        assert r.devices[peak] == "gpu"

    def test_transitions_counted_and_paid(self):
        g = power_law_graph(50_000, alpha=1.8, max_degree=400, seed=3)
        src = int(np.argmax(g.out_degrees))
        r = hybrid_bfs(g, src)
        # Device changes along the schedule match the transition count,
        # remembering execution starts on the GPU (post-transfer).
        changes = sum(
            1 for a, b in zip(["gpu"] + r.devices[:-1], r.devices) if a != b
        )
        assert changes == r.transitions
        # Each transition shows up as a PCIe transfer of at least the
        # state array.
        big_transfers = [
            t for t in r.traversal.timeline.transfers
            if t.num_bytes >= 4 * g.num_nodes
        ]
        assert len(big_transfers) >= r.transitions

    def test_hysteresis_limits_ping_pong(self):
        g = erdos_renyi_graph(30_000, 120_000, seed=4)
        strict = hybrid_bfs(
            g, 0, hybrid_config=HybridConfig(min_run_length=10)
        )
        loose = hybrid_bfs(
            g, 0, hybrid_config=HybridConfig(min_run_length=1)
        )
        assert strict.transitions <= loose.transitions


class TestHybridAdvantage:
    def test_beats_pure_gpu_on_road(self):
        """The Hong et al. result: alternating execution rescues the
        GPU-hostile road topology."""
        from repro.core import adaptive_bfs

        g = road_network(20_000, seed=5)
        r_hybrid = hybrid_bfs(g, 0)
        r_gpu = adaptive_bfs(g, 0)
        assert np.array_equal(r_hybrid.values, r_gpu.values)
        assert r_hybrid.total_seconds < 0.6 * r_gpu.total_seconds

    def test_close_to_gpu_on_dense(self):
        from repro.core import adaptive_sssp

        g = attach_uniform_weights(
            power_law_graph(30_000, alpha=1.7, max_degree=500, seed=6), seed=7
        )
        src = int(np.argmax(g.out_degrees))
        r_hybrid = hybrid_sssp(g, src)
        r_gpu = adaptive_sssp(g, src)
        assert r_hybrid.total_seconds < 1.3 * r_gpu.total_seconds

    def test_cpu_advantage_knob(self):
        g = erdos_renyi_graph(20_000, 80_000, seed=8)
        never_cpu = hybrid_bfs(
            g, 0, hybrid_config=HybridConfig(cpu_advantage=0.0)
        )
        assert never_cpu.cpu_iterations == 0
