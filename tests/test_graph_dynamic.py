"""Dynamic graphs: mutation batches, the delta-CSR overlay, compaction.

The contract under test: a :class:`DeltaOverlayGraph` is an *exact*
stand-in for the mutated graph — its incremental statistics match the
logical edge set after every apply, and realizing it (``materialize`` /
``compact``) produces a CSR that is array- and digest-identical to a
from-scratch :func:`from_edge_list` build of the mutated edge list.
The hypothesis round-trip drives random mutation sequences through both
the overlay and an explicit edge-dict model with the same lenient
semantics and requires the two to agree bit-for-bit.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, GraphFormatError
from repro.graph.builder import from_edge_list
from repro.graph.dynamic import (
    DeltaOverlayGraph,
    EdgeBatch,
    MutationReport,
    load_mutations_jsonl,
)
from repro.gpusim.allocator import MemoryBudget
from repro.obs import Observer, observing
from repro.obs.manifest import graph_fingerprint


def _graph(weighted: bool = False):
    src = [0, 0, 1, 2, 2, 3]
    dst = [1, 2, 2, 3, 4, 4]
    w = [1.0, 4.0, 2.0, 7.0, 3.0, 1.0] if weighted else None
    return from_edge_list(src, dst, w, num_nodes=5, name="tiny")


# ----------------------------------------------------------------------
# EdgeBatch parsing
# ----------------------------------------------------------------------

class TestEdgeBatchParsing:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "muts.jsonl"
        path.write_text(
            "\n".join(
                [
                    '{"op": "insert", "u": 1, "v": 4, "weight": 2.5}',
                    "# a comment line",
                    "",
                    '{"op": "delete", "u": 0, "v": 2}',
                    '{"op": "grow", "nodes": 3}',
                ]
            )
        )
        batch = load_mutations_jsonl(path)
        assert len(batch) == 3
        ops = list(batch)
        assert [op.op for op in ops] == ["insert", "delete", "grow"]
        assert ops[0].weight == 2.5
        assert ops[2].nodes == 3
        # line numbers survive for diagnostics (comments/blanks counted)
        assert [op.line for op in ops] == [1, 4, 5]

    @pytest.mark.parametrize(
        "line, fragment",
        [
            ('{"op": "frobnicate", "u": 0, "v": 1}', "unknown mutation op"),
            ('{"op": "insert", "u": 0}', "integer 'v'"),
            ('{"op": "insert", "u": 0, "v": "x"}', "integer 'v'"),
            ('{"op": "insert", "u": 0, "v": 1, "extra": 1}', "unknown field"),
            ('{"op": "delete", "u": 0, "v": 1, "weight": 2}', "unknown field"),
            ('{"op": "grow", "nodes": 0}', "positive integer"),
            ('{"op": "grow", "nodes": true}', "positive integer"),
            ('{"op": "insert", "u": 0, "v": 1, "weight": -2}', "non-negative"),
            ('{"op": "insert", "u": 0, "v": 1, "weight": "w"}', "bad edge weight"),
            ("[1, 2, 3]", "JSON object"),
            ("{not json", "invalid JSON"),
        ],
    )
    def test_bad_lines_are_line_numbered_errors(self, tmp_path, line, fragment):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "grow", "nodes": 1}\n' + line + "\n")
        with pytest.raises(GraphFormatError) as exc:
            EdgeBatch.from_jsonl(path)
        message = str(exc.value)
        assert fragment in message
        assert ":2:" in message  # the offending line, not the file start

    def test_from_docs_carries_stream_linenos(self):
        docs = [(7, {"op": "insert", "u": 0, "v": 1}), (9, {"op": "bad"})]
        with pytest.raises(GraphFormatError) as exc:
            EdgeBatch.from_docs(docs, path="<stdin>")
        assert "<stdin>:9:" in str(exc.value)


# ----------------------------------------------------------------------
# Overlay apply: modes, quarantine, incremental statistics
# ----------------------------------------------------------------------

class TestOverlayApply:
    def test_insert_delete_grow_updates_stats_without_rebuild(self):
        overlay = DeltaOverlayGraph(_graph())
        delta = overlay.apply(
            EdgeBatch.from_docs(
                enumerate(
                    [
                        {"op": "insert", "u": 4, "v": 0},
                        {"op": "delete", "u": 0, "v": 2},
                        {"op": "grow", "nodes": 2},
                        {"op": "insert", "u": 6, "v": 1},
                    ],
                    start=1,
                )
            )
        )
        assert overlay.num_nodes == 7
        assert overlay.num_edges == 6 + 2 - 1
        assert overlay.epoch == 1 and delta.epoch == 1
        assert delta.num_inserts == 2 and delta.num_deletes == 1
        assert delta.nodes_added == 2
        assert overlay.has_edge(4, 0) and overlay.has_edge(6, 1)
        assert not overlay.has_edge(0, 2)
        expected_deg = np.array([1, 1, 2, 1, 1, 0, 1])
        np.testing.assert_array_equal(overlay.out_degrees, expected_deg)
        assert overlay.avg_out_degree == pytest.approx(7 / 7)

    def test_default_mode_rejects_range_and_missing_delete(self):
        overlay = DeltaOverlayGraph(_graph())
        with pytest.raises(GraphFormatError, match="out of range"):
            overlay.apply(EdgeBatch.inserts([(0, 99)]))
        with pytest.raises(GraphFormatError, match="missing edge"):
            overlay.apply(EdgeBatch.deletes([(4, 0)]))
        # ...but tolerates duplicates (collapsed, not errors).
        delta = overlay.apply(EdgeBatch.inserts([(0, 1)]))
        assert delta.num_inserts == 0
        assert delta.report.duplicates_collapsed == 1

    def test_strict_mode_raises_on_each_anomaly(self):
        cases = [
            (EdgeBatch.inserts([(2, 2)]), "self-loop"),
            (EdgeBatch.inserts([(0, 1)]), "duplicate edge"),
            (EdgeBatch.deletes([(4, 0)]), "missing edge"),
        ]
        for batch, fragment in cases:
            overlay = DeltaOverlayGraph(_graph())
            with pytest.raises(GraphFormatError, match=fragment):
                overlay.apply(batch, mode="strict")
        overlay = DeltaOverlayGraph(_graph())  # unweighted
        with pytest.raises(GraphFormatError, match="unweighted"):
            overlay.apply(
                EdgeBatch.inserts([(4, 0)], weights=[2.0]), mode="strict"
            )

    def test_lenient_mode_quarantines_and_tallies(self):
        overlay = DeltaOverlayGraph(_graph())
        report = MutationReport()
        delta = overlay.apply(
            EdgeBatch.from_docs(
                enumerate(
                    [
                        {"op": "insert", "u": 2, "v": 2},   # self-loop
                        {"op": "insert", "u": 0, "v": 1},   # duplicate
                        {"op": "insert", "u": 0, "v": 99},  # dangling
                        {"op": "delete", "u": 4, "v": 0},   # missing
                        {"op": "insert", "u": 4, "v": 0},   # fine
                    ],
                    start=1,
                )
            ),
            mode="lenient",
            report=report,
        )
        assert delta.num_inserts == 1 and delta.num_deletes == 0
        assert report.self_loops_dropped == 1
        assert report.duplicates_collapsed == 1
        assert report.dangling_dropped == 1
        assert report.missing_deletes_dropped == 1
        assert report.quarantined == 4
        assert report.to_dict()["quarantined"] == 4

    def test_invalid_mode_rejected(self):
        overlay = DeltaOverlayGraph(_graph())
        with pytest.raises(GraphFormatError, match="mutation mode"):
            overlay.apply(EdgeBatch.inserts([(4, 0)]), mode="sloppy")

    def test_delete_then_reinsert_in_one_batch(self):
        overlay = DeltaOverlayGraph(_graph(weighted=True))
        overlay.apply(
            EdgeBatch.from_docs(
                enumerate(
                    [
                        {"op": "delete", "u": 0, "v": 2},
                        {"op": "insert", "u": 0, "v": 2, "weight": 9.0},
                    ],
                    start=1,
                )
            )
        )
        assert overlay.has_edge(0, 2)
        graph = overlay.materialize()
        slot = np.flatnonzero(
            graph.col_indices[
                graph.row_offsets[0]: graph.row_offsets[1]
            ] == 2
        )
        assert graph.weights[graph.row_offsets[0] + slot[0]] == 9.0

    def test_grown_nodes_referencable_in_same_batch(self):
        overlay = DeltaOverlayGraph(_graph())
        delta = overlay.apply(
            EdgeBatch.from_docs(
                enumerate(
                    [
                        {"op": "grow", "nodes": 1},
                        {"op": "insert", "u": 5, "v": 0},
                    ],
                    start=1,
                )
            )
        )
        assert delta.num_inserts == 1
        assert overlay.has_edge(5, 0)

    def test_has_edge_range_checked(self):
        overlay = DeltaOverlayGraph(_graph())
        with pytest.raises(GraphError, match="out of range"):
            overlay.has_edge(0, 99)

    def test_observer_counters(self):
        observer = Observer()
        with observing(observer):
            overlay = DeltaOverlayGraph(_graph())
            overlay.apply(
                EdgeBatch.from_docs(
                    enumerate(
                        [
                            {"op": "insert", "u": 4, "v": 0},
                            {"op": "delete", "u": 0, "v": 2},
                            {"op": "insert", "u": 2, "v": 2},
                            {"op": "grow", "nodes": 1},
                        ],
                        start=1,
                    )
                ),
                mode="lenient",
            )
            overlay.compact()
        snap = observer.metrics.snapshot()
        assert snap["dynamic.mutations_applied"]["value"] == 1
        assert snap["dynamic.edges_inserted"]["value"] == 1
        assert snap["dynamic.edges_deleted"]["value"] == 1
        assert snap["dynamic.nodes_added"]["value"] == 1
        assert snap["dynamic.ops_quarantined"]["value"] == 1
        assert snap["dynamic.epoch"]["value"] == 1
        assert snap["dynamic.compactions"]["value"] == 1
        assert snap["dynamic.compaction_bytes"]["value"] > 0


# ----------------------------------------------------------------------
# Compaction: pricing and canonical equality
# ----------------------------------------------------------------------

class TestCompaction:
    def test_compact_equals_materialize_and_is_priced(self):
        overlay = DeltaOverlayGraph(_graph(weighted=True))
        overlay.apply(EdgeBatch.inserts([(4, 0), (3, 1)], weights=[2.0, 5.0]))
        overlay.apply(EdgeBatch.deletes([(2, 3)]))
        result = overlay.compact()
        ref = overlay.materialize()
        assert graph_fingerprint(result.graph) == graph_fingerprint(ref)
        assert result.host_seconds > 0
        assert result.transfer.seconds > 0
        assert result.delta_bytes == overlay.delta_bytes()
        assert result.seconds == result.host_seconds + result.transfer.seconds
        # Only the delta ships — far less than a cold full upload.
        assert result.delta_bytes < ref.device_bytes()

    def test_compact_charges_growth_against_budget(self):
        overlay = DeltaOverlayGraph(_graph())
        overlay.apply(
            EdgeBatch.from_docs(
                enumerate(
                    [{"op": "grow", "nodes": 64}]
                    + [{"op": "insert", "u": 5 + i, "v": i % 5} for i in range(32)],
                    start=1,
                )
            )
        )
        memory = MemoryBudget(1 << 20)
        base_bytes = _graph().device_bytes()
        memory.allocate(base_bytes, "graph", label="base graph")
        result = overlay.compact(memory=memory)
        assert memory.by_category["graph"] == result.graph.device_bytes()

    def test_empty_overlay_compacts_to_base_digest(self):
        base = _graph(weighted=True)
        overlay = DeltaOverlayGraph(base)
        result = overlay.compact()
        assert (
            graph_fingerprint(result.graph)["digest"]
            == graph_fingerprint(base)["digest"]
        )


# ----------------------------------------------------------------------
# Hypothesis round-trip: overlay == from-scratch build, always
# ----------------------------------------------------------------------

@st.composite
def mutation_scenarios(draw):
    """A base graph plus a random mutation-op stream.

    Ops are drawn blind (endpoints may be out of range, duplicated,
    self-looping, already deleted...) — lenient mode must quarantine
    exactly what the explicit model quarantines.
    """
    n = draw(st.integers(min_value=2, max_value=16))
    weighted = draw(st.booleans())
    base_pairs = draw(
        st.sets(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda p: p[0] != p[1]),
            max_size=24,
        )
    )
    base_weights = None
    if weighted:
        base_weights = draw(
            st.lists(
                st.floats(0.5, 8.0, allow_nan=False, width=32),
                min_size=len(base_pairs),
                max_size=len(base_pairs),
            )
        )
    max_node = n + 6  # leave room for grown nodes and dangling ids
    op = st.one_of(
        st.fixed_dictionaries(
            {
                "op": st.just("insert"),
                "u": st.integers(0, max_node),
                "v": st.integers(0, max_node),
            },
            optional={"weight": st.floats(0.5, 8.0, allow_nan=False, width=32)},
        ),
        st.fixed_dictionaries(
            {
                "op": st.just("delete"),
                "u": st.integers(0, max_node),
                "v": st.integers(0, max_node),
            }
        ),
        st.fixed_dictionaries(
            {"op": st.just("grow"), "nodes": st.integers(1, 3)}
        ),
    )
    batches = draw(st.lists(st.lists(op, max_size=12), min_size=1, max_size=4))
    return n, weighted, sorted(base_pairs), base_weights, batches


def _model_apply(model, num_nodes, weighted, ops):
    """The lenient-mode contract, restated as a plain edge dict."""
    for doc in ops:
        if doc["op"] == "grow":
            num_nodes += doc["nodes"]
            continue
        u, v = doc["u"], doc["v"]
        if not (0 <= u < num_nodes and 0 <= v < num_nodes):
            continue  # dangling_dropped
        if doc["op"] == "insert":
            if u == v or (u, v) in model:
                continue  # self_loops_dropped / duplicates_collapsed
            weight = doc.get("weight", 1.0)
            model[(u, v)] = np.float32(weight) if weighted else None
        else:
            model.pop((u, v), None)  # missing_deletes_dropped when absent
    return num_nodes


class TestOverlayRoundTripProperty:
    @given(mutation_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_compact_equals_from_scratch_build(self, scenario):
        n, weighted, base_pairs, base_weights, batches = scenario
        src = [u for u, _ in base_pairs]
        dst = [v for _, v in base_pairs]
        base = from_edge_list(
            src, dst, base_weights, num_nodes=n, name="hyp"
        )
        overlay = DeltaOverlayGraph(base)
        model = {}
        for i, (u, v) in enumerate(base_pairs):
            model[(u, v)] = base_weights[i] if weighted else None
        model_n = n

        for k, ops in enumerate(batches):
            batch = EdgeBatch.from_docs(
                enumerate(ops, start=1), path=f"<hyp-{k}>"
            )
            overlay.apply(batch, mode="lenient")
            model_n = _model_apply(model, model_n, weighted, ops)

        # The overlay's incremental statistics match the model...
        assert overlay.num_nodes == model_n
        assert overlay.num_edges == len(model)
        deg = np.zeros(model_n, dtype=np.int64)
        for u, _ in model:
            deg[u] += 1
        np.testing.assert_array_equal(overlay.out_degrees, deg)

        # ...and realization is identical to a from-scratch build of the
        # model's edge list: CSR arrays and content digest both.
        m_src = [u for u, _ in model]
        m_dst = [v for _, v in model]
        m_w = [model[p] for p in model] if weighted else None
        expected = from_edge_list(
            m_src, m_dst, m_w, num_nodes=model_n, name="hyp"
        )
        for built in (overlay.materialize(), overlay.compact().graph):
            np.testing.assert_array_equal(built.row_offsets, expected.row_offsets)
            np.testing.assert_array_equal(built.col_indices, expected.col_indices)
            if weighted:
                np.testing.assert_array_equal(built.weights, expected.weights)
            else:
                assert built.weights is None
            assert (
                graph_fingerprint(built)["digest"]
                == graph_fingerprint(expected)["digest"]
            )
