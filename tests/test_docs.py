"""Docs health under pytest: links resolve, examples run, tables current.

Runs the same checks as the CI ``docs`` job (``tools/check_docs.py``)
so a broken doc fails the ordinary test suite too, and additionally
asserts the metrics-catalog table in ``docs/observability.md`` matches
:data:`repro.obs.METRICS_CATALOG` row for row.
"""

import os
import re
import sys

import pytest

from repro.obs import METRICS_CATALOG

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_docs  # noqa: E402


class TestLinks:
    def test_all_relative_links_resolve(self):
        assert check_docs.check_links() == []

    def test_linked_docs_exist(self):
        for doc in check_docs.LINKED_DOCS:
            assert os.path.exists(os.path.join(REPO_ROOT, doc)), doc

    def test_observability_doc_is_link_checked_and_executed(self):
        assert "docs/observability.md" in check_docs.LINKED_DOCS
        assert "docs/observability.md" in check_docs.EXECUTED_DOCS

    def test_link_extractor(self):
        text = "[a](docs/x.md) [b](https://e.com) [c](#anchor) [d](y.md#sec)"
        assert list(check_docs.iter_relative_links(text)) == ["docs/x.md", "y.md"]

    def test_learned_policy_doc_is_linked(self):
        assert "docs/learned-policy.md" in check_docs.LINKED_DOCS


class TestOrphans:
    def test_no_orphaned_docs(self):
        assert check_docs.check_orphans() == []

    def test_orphan_detected(self, tmp_path):
        """An unreferenced docs/*.md file must be flagged."""
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("[linked](docs/linked.md)\n")
        (tmp_path / "docs" / "linked.md").write_text("fine\n")
        (tmp_path / "docs" / "lost.md").write_text("nobody links me\n")
        problems = check_docs.check_orphans(root=str(tmp_path))
        assert problems == [
            "docs/lost.md: orphaned — not reachable from README.md by "
            "relative links"
        ]

    def test_transitive_reachability_counts(self, tmp_path):
        """README -> a -> b keeps b out of the orphan list."""
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("[a](docs/a.md)\n")
        (tmp_path / "docs" / "a.md").write_text("[b](b.md)\n")
        (tmp_path / "docs" / "b.md").write_text("leaf\n")
        assert check_docs.check_orphans(root=str(tmp_path)) == []


class TestExamples:
    def test_observability_examples_execute(self):
        assert check_docs.run_examples() == []

    def test_examples_are_nontrivial(self):
        blocks = check_docs.extract_python_blocks("docs/observability.md")
        assert len(blocks) >= 4
        assert any("assert" in block for block in blocks)


class TestMetricsCatalogTable:
    @pytest.fixture(scope="class")
    def table_rows(self):
        path = os.path.join(REPO_ROOT, "docs", "observability.md")
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        rows = {}
        for line in text.splitlines():
            match = re.match(
                r"^\| `([a-z0-9_]+\.[a-z0-9_.]+)` \| (\w+) \| ([^|]+) \|", line
            )
            if match:
                rows[match.group(1)] = (
                    match.group(2).strip(), match.group(3).strip()
                )
        return rows

    def test_every_cataloged_metric_documented(self, table_rows):
        documented = set(table_rows)
        cataloged = {spec.name for spec in METRICS_CATALOG}
        assert documented == cataloged

    def test_kinds_and_units_match(self, table_rows):
        for spec in METRICS_CATALOG:
            kind, unit = table_rows[spec.name]
            assert kind == spec.kind, spec.name
            assert unit == spec.unit, spec.name
