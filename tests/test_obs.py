"""Tests for the observability layer: context, metrics, spans, observer."""

import re

import numpy as np
import pytest

from repro.core import adaptive_bfs, adaptive_sssp, run_static
from repro.graph.generators import balanced_tree, rmat_graph
from repro.kernels import run_bfs, run_sssp
from repro.obs import (
    METRICS_CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observer,
    SpanProfiler,
    current_observer,
    observing,
)


# ----------------------------------------------------------------------
# Context
# ----------------------------------------------------------------------

class TestContext:
    def test_default_is_none(self):
        assert current_observer() is None

    def test_observing_installs_and_restores(self):
        observer = Observer()
        with observing(observer):
            assert current_observer() is observer
        assert current_observer() is None

    def test_observing_none_is_noop_scope(self):
        with observing(None):
            assert current_observer() is None

    def test_nested_installs_restore_outer(self):
        outer, inner = Observer(), Observer()
        with observing(outer):
            with observing(inner):
                assert current_observer() is inner
            assert current_observer() is outer
        assert current_observer() is None

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with observing(Observer()):
                raise RuntimeError("boom")
        assert current_observer() is None


# ----------------------------------------------------------------------
# Metrics instruments
# ----------------------------------------------------------------------

class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x.y")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x.y").inc(-1)

    def test_to_dict(self):
        c = Counter("x.y", unit="events")
        c.inc(3)
        assert c.to_dict() == {"kind": "counter", "unit": "events", "value": 3}


class TestGauge:
    def test_tracks_high_water_mark(self):
        g = Gauge("x.y")
        g.set(10)
        g.set(3)
        assert g.value == 3
        assert g.max_value == 10

    def test_to_dict(self):
        g = Gauge("x.y", unit="bytes")
        g.set(7)
        d = g.to_dict()
        assert d["kind"] == "gauge"
        assert d["value"] == 7
        assert d["max"] == 7


class TestHistogram:
    def test_streaming_stats(self):
        h = Histogram("x.y")
        for v in (4, 2, 6):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 12
        assert h.min == 2
        assert h.max == 6
        assert h.mean == 4

    def test_empty_mean_is_zero(self):
        assert Histogram("x.y").mean == 0.0

    def test_to_dict_keys(self):
        h = Histogram("x.y")
        h.observe(1)
        assert set(h.to_dict()) == {
            "kind", "unit", "count", "sum", "min", "max", "mean"
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("frame.iterations")
        b = reg.counter("frame.iterations")
        assert a is b
        assert len(reg) == 1

    def test_catalog_unit_applied(self):
        reg = MetricsRegistry()
        assert reg.counter("frame.edges_scanned").unit == "edges"
        assert reg.gauge("memory.peak_bytes").unit == "bytes"

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("my.metric")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("my.metric")

    def test_catalog_kind_enforced(self):
        with pytest.raises(ValueError, match="cataloged as a gauge"):
            MetricsRegistry().counter("memory.peak_bytes")

    @pytest.mark.parametrize(
        "bad", ["", "Frame.iterations", "frame.", ".frame", "frame..x",
                "frame iterations", "1frame.x", "frame.X"]
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError, match="bad metric name"):
            MetricsRegistry().counter(bad)

    def test_adhoc_names_allowed(self):
        reg = MetricsRegistry()
        reg.histogram("myexp.batch_size").observe(128)
        assert "myexp.batch_size" in reg

    def test_snapshot_sorted_and_plain(self):
        reg = MetricsRegistry()
        reg.counter("b.x").inc()
        reg.counter("a.x").inc()
        snap = reg.snapshot()
        assert list(snap) == ["a.x", "b.x"]
        assert snap["a.x"]["value"] == 1


class TestCatalog:
    def test_names_unique(self):
        names = [s.name for s in METRICS_CATALOG]
        assert len(names) == len(set(names))

    def test_names_dotted_snake_case(self):
        pattern = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
        for spec in METRICS_CATALOG:
            assert pattern.match(spec.name), spec.name

    def test_kinds_valid(self):
        for spec in METRICS_CATALOG:
            assert spec.kind in ("counter", "gauge", "histogram"), spec.name

    def test_sources_are_real_modules(self):
        import importlib

        for spec in METRICS_CATALOG:
            importlib.import_module(spec.source)

    def test_every_spec_described(self):
        for spec in METRICS_CATALOG:
            assert spec.unit, spec.name
            assert spec.description, spec.name


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_nesting_depth_and_close_order(self):
        prof = SpanProfiler()
        with prof.span("outer"):
            with prof.span("inner"):
                pass
        assert [s.name for s in prof.spans] == ["inner", "outer"]
        assert prof.spans[0].depth == 1
        assert prof.spans[1].depth == 0

    def test_open_spans_absorb_sim_advance(self):
        prof = SpanProfiler()
        with prof.span("query"):
            with prof.span("iteration"):
                prof.advance_sim(0.25)
        assert prof.spans[0].sim_seconds == 0.25
        assert prof.spans[1].sim_seconds == 0.25
        assert prof.sim_seconds == 0.25

    def test_sim_start_offsets(self):
        prof = SpanProfiler()
        prof.advance_sim(1.0)
        with prof.span("late"):
            prof.advance_sim(0.5)
        assert prof.spans[0].sim_start == 1.0
        assert prof.spans[0].sim_seconds == 0.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SpanProfiler().advance_sim(-0.1)

    def test_add_span_advances_clock(self):
        prof = SpanProfiler()
        prof.add_span("iteration", sim_seconds=0.1, iteration=0)
        prof.add_span("iteration", sim_seconds=0.2, iteration=1)
        assert prof.sim_seconds == pytest.approx(0.3)
        assert prof.spans[1].sim_start == pytest.approx(0.1)
        assert prof.spans[0].attrs == {"iteration": 0}

    def test_wall_seconds_measured(self):
        prof = SpanProfiler()
        with prof.span("timed"):
            pass
        assert prof.spans[0].wall_seconds >= 0.0

    def test_to_dicts_round(self):
        prof = SpanProfiler()
        with prof.span("a", tag="v"):
            pass
        d = prof.to_dicts()[0]
        assert d["name"] == "a"
        assert d["attrs"] == {"tag": "v"}


# ----------------------------------------------------------------------
# End-to-end instrumentation
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def graph():
    return rmat_graph(8, seed=11)


class TestObservedRuns:
    def test_adaptive_bfs_reports_metrics(self, graph):
        observer = Observer()
        result = adaptive_bfs(graph, 0, observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["frame.iterations"]["value"] == result.num_iterations
        assert snap["runtime.decisions"]["value"] == result.trace.num_decisions
        assert snap["gpusim.kernel_launches"]["value"] > 0
        assert snap["gpusim.kernels_priced"]["value"] > 0
        assert snap["gpusim.simulated_cycles"]["value"] > 0
        assert snap["frame.workset_size"]["count"] == result.num_iterations
        assert (
            snap["frame.edges_scanned"]["value"]
            == result.traversal.total_edges_scanned
        )

    def test_adaptive_sssp_reports_metrics(self, graph):
        from repro.graph.generators import attach_uniform_weights

        weighted = attach_uniform_weights(graph, seed=1)
        observer = Observer()
        result = adaptive_sssp(weighted, 0, observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["frame.iterations"]["value"] == result.num_iterations

    def test_spans_cover_the_whole_traversal(self, graph):
        observer = Observer()
        result = adaptive_bfs(graph, 0, observe=observer)
        spans = observer.spans.spans
        names = [s.name for s in spans]
        assert names.count("iteration") == result.num_iterations
        outer = spans[-1]
        assert outer.name == "adaptive_bfs"
        assert outer.depth == 0
        # The outer span absorbs the opening h2d copies plus every
        # iteration's kernels (later copy-backs land after it closes).
        iter_total = sum(s.sim_seconds for s in spans if s.name == "iteration")
        assert iter_total == pytest.approx(
            sum(r.seconds for r in result.traversal.iterations)
        )
        assert outer.sim_seconds >= iter_total
        assert outer.sim_seconds <= result.total_seconds + 1e-12

    def test_static_runners_accept_observe(self, graph):
        from repro.graph.generators import attach_uniform_weights

        weighted = attach_uniform_weights(graph, seed=1)
        for runner, g in ((run_bfs, graph), (run_sssp, weighted)):
            observer = Observer()
            result = runner(g, 0, "U_T_BM", observe=observer)
            snap = observer.metrics.snapshot()
            assert snap["frame.iterations"]["value"] == result.num_iterations
            assert "runtime.decisions" not in snap  # no decision maker ran

    def test_run_static_has_named_span(self, graph):
        observer = Observer()
        run_static(graph, 0, "bfs", "U_B_QU", observe=observer)
        assert observer.spans.spans[-1].name == "static_bfs"
        assert observer.spans.spans[-1].attrs == {"variant": "U_B_QU"}

    def test_observation_does_not_change_simulation(self, graph):
        base = adaptive_bfs(graph, 0)
        observed = adaptive_bfs(graph, 0, observe=Observer())
        assert np.array_equal(base.values, observed.values)
        assert base.total_seconds == observed.total_seconds

    def test_no_observer_leaks_after_run(self, graph):
        adaptive_bfs(graph, 0, observe=Observer())
        assert current_observer() is None

    def test_memory_metrics_with_budget(self, graph):
        from repro.gpusim.allocator import MemoryBudget
        from repro.gpusim.device import TESLA_C2070

        observer = Observer()
        memory = MemoryBudget("128M", device=TESLA_C2070)
        adaptive_bfs(graph, 0, memory=memory, observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["memory.peak_bytes"]["max"] == memory.peak_bytes
        assert snap["memory.current_bytes"]["max"] > 0

    def test_checkpoint_bytes_counted(self):
        from repro.reliability.checkpoint import CheckpointKeeper
        from repro.gpusim.device import TESLA_C2070

        graph = balanced_tree(2, 10)
        observer = Observer()
        keeper = CheckpointKeeper(every=2, device=TESLA_C2070)
        adaptive_bfs(graph, 0, checkpoint_keeper=keeper, observe=observer)
        snap = observer.metrics.snapshot()
        if keeper.saves:
            assert snap["frame.checkpoint_bytes"]["value"] > 0


class TestGuardMetrics:
    def test_clean_run(self, graph):
        from repro.reliability import resilient_bfs

        observer = Observer()
        result = resilient_bfs(graph, 0, observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["guard.attempts"]["value"] == result.attempts == 1
        assert snap["guard.faults"]["value"] == 0
        assert snap["guard.oom_rung"]["value"] == 0
        assert "guard.cpu_degradations" not in snap

    def test_faulty_run_counts_faults(self, graph):
        from repro.reliability import FaultPlan, resilient_bfs

        observer = Observer()
        plan = FaultPlan(seed=7, launch_failure_rate=0.4, max_faults=3)
        result = resilient_bfs(graph, 0, plan=plan, observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["guard.attempts"]["value"] == result.attempts
        assert snap["guard.faults"]["value"] == result.num_faults
        assert result.num_faults > 0

    def test_degraded_run_counts_degradation(self, graph):
        from repro.reliability import GuardConfig, resilient_bfs

        observer = Observer()
        guard = GuardConfig(mem_budget=1024, degrade_to_cpu=True)
        result = resilient_bfs(graph, 0, guard=guard, observe=observer)
        assert result.degraded
        snap = observer.metrics.snapshot()
        assert snap["guard.cpu_degradations"]["value"] == 1
        assert snap["guard.oom_rung"]["value"] == result.oom_rung


class TestObserver:
    def test_bundles_and_to_dict(self):
        observer = Observer()
        observer.metrics.counter("a.b").inc()
        with observer.span("s"):
            pass
        d = observer.to_dict()
        assert d["metrics"]["a.b"]["value"] == 1
        assert d["spans"][0]["name"] == "s"

    def test_repr(self):
        assert "Observer" in repr(Observer())
