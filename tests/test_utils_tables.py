"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import Table, format_seconds, format_si


class TestFormatSi:
    def test_millions(self):
        assert format_si(34_500_000) == "34.5M"

    def test_thousands(self):
        assert format_si(1057) == "1.1K"

    def test_billions(self):
        assert format_si(2_500_000_000) == "2.5G"

    def test_small_integer(self):
        assert format_si(73) == "73"

    def test_negative(self):
        assert format_si(-1_000_000) == "-1.0M"

    def test_fraction(self):
        assert format_si(0.5) == "0.5"


class TestFormatSeconds:
    def test_zero(self):
        assert format_seconds(0) == "0s"

    def test_nanoseconds(self):
        assert format_seconds(5e-9) == "5.0ns"

    def test_microseconds(self):
        assert format_seconds(42e-6) == "42.0us"

    def test_milliseconds(self):
        assert format_seconds(3.5e-3) == "3.50ms"

    def test_seconds(self):
        assert format_seconds(1.25) == "1.250s"

    def test_negative(self):
        assert format_seconds(-1e-3).startswith("-")


class TestTable:
    def test_render_contains_cells(self):
        t = Table(["net", "nodes"], title="datasets")
        t.add_row(["co-road", 435666])
        out = t.render()
        assert "co-road" in out
        assert "435666" in out
        assert "datasets" in out

    def test_row_length_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row([3.14159])
        assert "3.14" in t.render()

    def test_nan_rendered_as_dash(self):
        t = Table(["x"])
        t.add_row([float("nan")])
        assert "-" in t.render().splitlines()[-1]

    def test_alignment_consistent(self):
        t = Table(["col"])
        t.add_row(["short"])
        t.add_row(["much longer cell"])
        lines = t.render().splitlines()
        assert len(lines[-1]) == len(lines[-2])
