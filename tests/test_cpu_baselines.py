"""Tests for repro.cpu (serial baselines and the CPU cost model)."""

import numpy as np
import pytest

from repro.cpu import (
    DEFAULT_CPU,
    CpuModel,
    cpu_bellman_ford,
    cpu_bfs,
    cpu_dijkstra,
)
from repro.errors import GraphError
from repro.graph.generators import attach_uniform_weights, chain_graph, erdos_renyi_graph
from tests.conftest import assert_bfs_matches_networkx, assert_sssp_matches_networkx


class TestCpuBfs:
    def test_chain_levels(self, chain10):
        r = cpu_bfs(chain10, 0)
        assert r.levels.tolist() == list(range(10))
        assert r.reached == 10

    def test_matches_networkx(self, random_graph):
        r = cpu_bfs(random_graph, 0)
        assert_bfs_matches_networkx(random_graph, 0, r.levels)

    def test_operation_counts(self, chain10):
        r = cpu_bfs(chain10, 0)
        assert r.nodes_visited == 10
        assert r.edges_scanned == chain10.num_edges

    def test_seconds_positive_and_scales(self):
        small = cpu_bfs(chain_graph(100), 0)
        large = cpu_bfs(chain_graph(10_000), 0)
        assert 0 < small.seconds < large.seconds

    def test_unreachable_nodes(self, tiny_graph):
        r = cpu_bfs(tiny_graph, 3)
        assert r.reached == 2

    def test_bad_source(self, chain10):
        with pytest.raises(GraphError):
            cpu_bfs(chain10, 99)


class TestCpuDijkstra:
    def test_requires_weights(self, chain10):
        with pytest.raises(GraphError, match="weights"):
            cpu_dijkstra(chain10, 0)

    def test_matches_networkx(self, random_weighted):
        r = cpu_dijkstra(random_weighted, 0, method="heap")
        assert_sssp_matches_networkx(random_weighted, 0, r.distances)

    def test_fast_matches_heap_distances(self, random_weighted):
        heap = cpu_dijkstra(random_weighted, 0, method="heap")
        fast = cpu_dijkstra(random_weighted, 0, method="fast")
        assert np.allclose(heap.distances, fast.distances, equal_nan=False)

    def test_fast_matches_heap_counts(self, random_weighted):
        heap = cpu_dijkstra(random_weighted, 0, method="heap")
        fast = cpu_dijkstra(random_weighted, 0, method="fast")
        assert fast.nodes_visited == heap.nodes_visited
        assert fast.edges_scanned == heap.edges_scanned
        # Push counts agree within a few percent (batched replay).
        assert fast.heap_pushes == pytest.approx(heap.heap_pushes, rel=0.05)

    def test_auto_selects_engine(self, random_weighted):
        r = cpu_dijkstra(random_weighted, 0, method="auto")
        assert r.reached > 0

    def test_unknown_method(self, random_weighted):
        with pytest.raises(ValueError):
            cpu_dijkstra(random_weighted, 0, method="quantum")

    def test_unreachable_inf(self, tiny_weighted):
        r = cpu_dijkstra(tiny_weighted, 3)
        assert np.isinf(r.distances[0])

    def test_heap_counts_consistent(self, random_weighted):
        r = cpu_dijkstra(random_weighted, 0, method="heap")
        assert r.heap_pops <= r.heap_pushes
        assert r.max_heap_size >= 1
        assert r.seconds > 0


class TestBellmanFord:
    def test_matches_dijkstra(self, random_weighted):
        bf = cpu_bellman_ford(random_weighted, 0)
        dj = cpu_dijkstra(random_weighted, 0, method="heap")
        assert np.allclose(bf.distances, dj.distances)

    def test_does_redundant_work(self, random_weighted):
        bf = cpu_bellman_ford(random_weighted, 0)
        dj = cpu_dijkstra(random_weighted, 0, method="heap")
        # Unordered processing rescans edges; ordered scans each once.
        assert bf.edges_scanned >= dj.edges_scanned

    def test_requires_weights(self, chain10):
        with pytest.raises(GraphError):
            cpu_bellman_ford(chain10, 0)


class TestCpuModel:
    def test_bfs_formula(self):
        m = CpuModel()
        s = m.bfs_seconds(nodes_visited=10, edges_scanned=20, num_nodes=100)
        expected = 100 * m.init_per_node_s + 10 * (m.node_visit_s + m.update_s) + 20 * m.edge_scan_s
        assert s == pytest.approx(expected)

    def test_dijkstra_heap_term_grows_with_heap(self):
        m = CpuModel()
        small = m.dijkstra_seconds(10, 20, 30, 30, 4, 100)
        large = m.dijkstra_seconds(10, 20, 30, 30, 4096, 100)
        assert large > small

    def test_overrides(self):
        m = DEFAULT_CPU.with_overrides(edge_scan_s=1.0)
        assert m.edge_scan_s == 1.0
        assert DEFAULT_CPU.edge_scan_s != 1.0
