"""Tests for the reliability layer: fault plans and injection,
checkpoint/restore, the watchdog, and the guarded runners.

The load-bearing guarantee is the acceptance criterion from the issue:
under a seeded fault plan (transient launch failures plus state
corruption), ``resilient_bfs``/``resilient_sssp`` return values
bit-identical to a fault-free run, and the trace lists every injected
fault together with the recovery action that answered it.
"""

import json

import numpy as np
import pytest

from repro.core import adaptive_bfs, adaptive_sssp
from repro.core.telemetry import RECOVERY_ACTIONS, FaultEvent
from repro.cpu import cpu_bfs
from repro.errors import (
    CheckpointError,
    DeviceLostError,
    FaultPlanError,
    KernelError,
    LaunchError,
    MemoryFaultError,
    NonConvergenceError,
    ReproError,
)
from repro.graph.generators import attach_uniform_weights, erdos_renyi_graph
from repro.kernels import StaticPolicy
from repro.kernels.frame import traverse_bfs
from repro.kernels.variants import Variant
from repro.reliability import (
    CheckpointKeeper,
    FaultInjector,
    FaultPlan,
    GuardConfig,
    Watchdog,
    load_fault_plan,
    resilient_bfs,
    resilient_sssp,
)


def small_graph(weighted=False, seed=11):
    g = erdos_renyi_graph(400, 2400, seed=seed)
    return attach_uniform_weights(g, seed=seed + 1) if weighted else g


NO_SLEEP = GuardConfig(sleeper=lambda s: None)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_defaults_are_empty(self):
        assert FaultPlan().is_empty

    def test_rate_out_of_range(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(launch_failure_rate=1.5)
        with pytest.raises(FaultPlanError):
            FaultPlan(memory_fault_rate=-0.1)

    def test_spike_factor_below_one(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(latency_spike_rate=0.1, latency_spike_factor=0.5)

    def test_max_faults_zero_means_empty(self):
        plan = FaultPlan(launch_failure_rate=0.5, max_faults=0)
        assert plan.is_empty

    def test_roundtrip_dict(self):
        plan = FaultPlan(seed=3, launch_failure_rate=0.1)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultPlanError) as exc:
            FaultPlan.from_dict({"launch_rate": 0.1})
        assert "launch_rate" in str(exc.value)

    def test_load_inline_json(self):
        plan = load_fault_plan('{"seed": 9, "launch_failure_rate": 0.2}')
        assert plan.seed == 9
        assert plan.launch_failure_rate == 0.2

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"memory_fault_rate": 0.05}))
        assert load_fault_plan(str(path)).memory_fault_rate == 0.05

    def test_load_missing_file(self):
        with pytest.raises(FaultPlanError):
            load_fault_plan("/no/such/plan.json")

    def test_load_bad_json(self):
        with pytest.raises(FaultPlanError):
            load_fault_plan("{not json")

    def test_errors_catchable_via_base(self):
        with pytest.raises(ReproError):
            load_fault_plan("[1, 2]")

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(FaultPlanError) as exc:
            FaultPlan.from_dict({"kinds": ["launch_failure", "cosmic_ray"]})
        assert "cosmic_ray" in str(exc.value)

    def test_kinds_filter_gates_injection(self):
        plan = FaultPlan(
            seed=1, launch_failure_rate=1.0, kinds=("memory_fault",)
        )
        assert not plan.enables("launch_failure")
        assert plan.enables("memory_fault")
        assert FaultPlan(kinds=()).is_empty

    def test_device_scope_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(device=-2)

    def test_for_device_scoping(self):
        plan = FaultPlan(seed=4, device_loss_rate=0.2, device=1)
        assert plan.for_device(0, 4) is None
        derived = plan.for_device(1, 4)
        assert derived is not None
        assert derived.device is None  # scope resolved, not re-applied
        assert derived.seed != plan.seed

    def test_for_device_seeds_are_distinct(self):
        plan = FaultPlan(seed=4, device_loss_rate=0.2)
        seeds = {plan.for_device(i, 4).seed for i in range(4)}
        assert len(seeds) == 4

    def test_for_device_out_of_range_scope(self):
        plan = FaultPlan(seed=4, device_loss_rate=0.2, device=7)
        with pytest.raises(FaultPlanError, match="only 4 devices"):
            plan.for_device(0, 4)


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_deterministic_sequence(self):
        plan = FaultPlan(seed=4, launch_failure_rate=0.3, latency_spike_rate=0.2)

        def drive(injector):
            fired = []
            for _ in range(200):
                try:
                    injector.latency_multiplier("bfs_step")
                except ReproError:
                    pass
            return [(f.kind, f.sequence) for f in injector.log]

        a = drive(FaultInjector(plan))
        b = drive(FaultInjector(plan))
        assert a == b
        assert a  # the plan does fire at these rates

    def test_memory_fault_corrupts_live_arrays(self):
        plan = FaultPlan(seed=0, memory_fault_rate=1.0)
        injector = FaultInjector(plan)
        values = np.arange(64, dtype=np.int64)
        frontier = np.arange(4, dtype=np.int64) + 1
        with pytest.raises(MemoryFaultError) as exc:
            injector.on_iteration(3, values, frontier)
        assert "iteration 3" in str(exc.value)
        assert (values < 0).any()  # scribbled
        assert frontier[0] == 0

    def test_max_faults_budget(self):
        plan = FaultPlan(seed=0, memory_fault_rate=1.0, max_faults=1)
        injector = FaultInjector(plan)
        values = np.zeros(8, dtype=np.int64)
        frontier = np.ones(2, dtype=np.int64)
        with pytest.raises(MemoryFaultError):
            injector.on_iteration(0, values, frontier)
        # budget spent: no further injection
        injector.on_iteration(1, values, frontier)
        assert injector.num_injected == 1

    def test_drain_pending(self):
        plan = FaultPlan(seed=0, memory_fault_rate=1.0)
        injector = FaultInjector(plan)
        with pytest.raises(MemoryFaultError):
            injector.on_iteration(0, np.zeros(8, dtype=np.int64),
                                  np.ones(2, dtype=np.int64))
        assert len(injector.drain_pending()) == 1
        assert injector.drain_pending() == []
        assert injector.num_injected == 1  # log keeps everything

    def test_launch_failure_is_launch_error(self):
        graph = small_graph()
        plan = FaultPlan(seed=1, launch_failure_rate=1.0)
        injector = FaultInjector(plan)
        with injector.installed():
            with pytest.raises(LaunchError) as exc:
                adaptive_bfs(graph, 0)
        assert "injected transient launch failure" in str(exc.value)

    def test_device_loss_injected_and_attributed(self):
        plan = FaultPlan(seed=0, device_loss_rate=1.0)
        injector = FaultInjector(plan, device_index=3)
        with pytest.raises(DeviceLostError) as exc:
            injector.on_super_iteration(2)
        assert "device 3" in str(exc.value)
        fault = injector.log[0]
        assert fault.kind == "device_loss"
        assert fault.device == 3
        assert fault.site == "device3"

    def test_device_loss_gated_by_kinds_filter(self):
        plan = FaultPlan(
            seed=0, device_loss_rate=1.0, kinds=("launch_failure",)
        )
        injector = FaultInjector(plan, device_index=0)
        injector.on_super_iteration(0)  # must not raise
        assert injector.num_injected == 0


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------

class TestCheckpoint:
    def _bfs(self, graph, **kwargs):
        return traverse_bfs(graph, 0, StaticPolicy(Variant.parse("U_T_QU")), **kwargs)

    def test_snapshot_is_deep_copy(self):
        keeper = CheckpointKeeper(every=1)
        values = np.arange(16, dtype=np.int64)
        frontier = np.array([3, 4], dtype=np.int64)
        keeper.offer(
            algorithm="bfs", source=0, iteration=0, values=values,
            frontier=frontier, variant_code="U_T_QU", records=(), seconds=0.1,
        )
        values[:] = -1
        frontier[:] = 0
        cp = keeper.latest
        assert cp.values[3] == 3 and cp.frontier[0] == 3
        assert cp.next_iteration == 1

    def test_resume_equals_uninterrupted(self):
        graph = small_graph()
        baseline = self._bfs(graph)

        keeper = CheckpointKeeper(every=2)
        self._bfs(graph, checkpoint_keeper=keeper)
        cp = keeper.restore("bfs", 0)
        assert cp is not None and cp.next_iteration >= 2

        resumed = self._bfs(graph, resume_from=cp)
        assert np.array_equal(resumed.values, baseline.values)
        # the result carries the checkpointed history plus the replayed
        # tail, so iteration numbering matches the uninterrupted run
        assert [r.iteration for r in resumed.iterations] == [
            r.iteration for r in baseline.iterations
        ]
        assert keeper.restores == 1

    def test_restore_rejects_mismatched_query(self):
        keeper = CheckpointKeeper(every=1)
        keeper.offer(
            algorithm="bfs", source=0, iteration=0,
            values=np.zeros(4, dtype=np.int64),
            frontier=np.zeros(1, dtype=np.int64),
            variant_code="U_T_QU", records=(), seconds=0.1,
        )
        with pytest.raises(KernelError):
            keeper.restore("sssp", 0)
        with pytest.raises(KernelError):
            keeper.restore("bfs", 7)

    def test_cost_aware_policy_respects_budget(self):
        graph = small_graph()
        from repro.gpusim.device import TESLA_C2070

        baseline = self._bfs(graph)
        keeper = CheckpointKeeper(budget=0.02, device=TESLA_C2070)
        guarded = self._bfs(graph, checkpoint_keeper=keeper)
        # The cost-aware rule only checkpoints when the copy fits the
        # overhead budget, so total simulated time stays within ~2%.
        assert guarded.total_seconds <= 1.05 * baseline.total_seconds
        # ... unlike a naive every-iteration policy, which on this tiny
        # graph pays far more than the budget in copies.
        eager = CheckpointKeeper(every=1)
        assert self._bfs(graph, checkpoint_keeper=eager).total_seconds > (
            guarded.total_seconds
        )
        assert eager.saves > keeper.saves

    def test_interval_validation(self):
        with pytest.raises(KernelError):
            CheckpointKeeper(every=0)
        with pytest.raises(KernelError):
            CheckpointKeeper(budget=0.0)

    @staticmethod
    def _offered_keeper(extra=None):
        keeper = CheckpointKeeper(every=1)
        keeper.offer(
            algorithm="bfs", source=0, iteration=0,
            values=np.arange(8, dtype=np.int64),
            frontier=np.array([2, 5], dtype=np.int64),
            variant_code="U_T_QU", records=(), seconds=0.1, extra=extra,
        )
        return keeper

    def test_corrupted_values_rejected_on_restore(self):
        keeper = self._offered_keeper()
        keeper.latest.values[3] = -42  # bit-rot between capture and resume
        with pytest.raises(CheckpointError, match="'values'"):
            keeper.restore("bfs", 0)
        assert keeper.restores == 0

    def test_corrupted_frontier_rejected_on_restore(self):
        keeper = self._offered_keeper()
        keeper.latest.frontier[0] = 7
        with pytest.raises(CheckpointError, match="'frontier'"):
            keeper.restore("bfs", 0)

    def test_corrupted_extra_rejected_on_restore(self):
        keeper = self._offered_keeper(
            extra={"ranks": np.ones(4, dtype=np.float64)}
        )
        keeper.latest.extra["ranks"][0] = 0.0
        with pytest.raises(CheckpointError, match="'extra'"):
            keeper.restore("bfs", 0)

    def test_intact_checkpoint_passes_verification(self):
        keeper = self._offered_keeper()
        cp = keeper.restore("bfs", 0)
        assert cp is not None and keeper.restores == 1


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------

class TestWatchdog:
    def test_iteration_budget(self):
        dog = Watchdog(max_iterations=5)
        dog.check(4)
        with pytest.raises(NonConvergenceError) as exc:
            dog.check(5)
        assert "5" in str(exc.value)

    def test_wall_clock_deadline(self):
        now = [0.0]
        dog = Watchdog(deadline_s=1.0, clock=lambda: now[0])
        dog.check(0)
        now[0] = 2.0
        with pytest.raises(NonConvergenceError) as exc:
            dog.check(1)
        assert "deadline" in str(exc.value)

    def test_simulated_budget_spans_retries(self):
        dog = Watchdog(simulated_deadline_s=1.0)
        dog.check(0, simulated_seconds=0.5)
        dog.bank_simulated(0.8)  # a failed attempt's spend
        with pytest.raises(NonConvergenceError):
            dog.check(0, simulated_seconds=0.5)

    def test_traversal_frame_enforces_budget(self):
        graph = small_graph()
        with pytest.raises(NonConvergenceError):
            adaptive_bfs(graph, 0, watchdog=Watchdog(max_iterations=1))

    def test_arm_starts_the_clock_explicitly(self):
        now = [0.0]
        dog = Watchdog(deadline_s=1.0, clock=lambda: now[0])
        assert not dog.armed
        now[0] = 10.0  # time before arming never counts
        dog.arm()
        assert dog.armed
        assert dog.elapsed_s == 0.0
        assert dog.remaining_s == 1.0
        now[0] = 10.4
        assert dog.elapsed_s == pytest.approx(0.4)
        assert dog.remaining_s == pytest.approx(0.6)
        dog.check(0)  # still within budget
        now[0] = 11.5
        with pytest.raises(NonConvergenceError):
            dog.check(1)

    def test_arm_is_idempotent(self):
        now = [0.0]
        dog = Watchdog(deadline_s=5.0, clock=lambda: now[0])
        dog.arm()
        now[0] = 2.0
        dog.arm()  # a second arm must not restart the clock
        assert dog.elapsed_s == pytest.approx(2.0)

    def test_remaining_clamps_at_zero(self):
        now = [0.0]
        dog = Watchdog(deadline_s=1.0, clock=lambda: now[0])
        dog.arm()
        now[0] = 3.0
        assert dog.remaining_s == 0.0

    def test_unarmed_check_auto_arms(self):
        now = [5.0]
        dog = Watchdog(deadline_s=1.0, clock=lambda: now[0])
        dog.check(0)  # lazily arms here, preserving legacy behavior
        assert dog.armed
        now[0] = 5.5
        dog.check(1)
        now[0] = 7.0
        with pytest.raises(NonConvergenceError):
            dog.check(2)

    def test_remaining_without_deadline_is_none(self):
        dog = Watchdog(max_iterations=3)
        dog.arm()
        assert dog.remaining_s is None


# ----------------------------------------------------------------------
# Guarded runners
# ----------------------------------------------------------------------

class TestResilientFaultFree:
    def test_bfs_no_plan_single_attempt(self):
        graph = small_graph()
        base = adaptive_bfs(graph, 0)
        res = resilient_bfs(graph, 0, guard=NO_SLEEP)
        assert res.attempts == 1
        assert not res.degraded and res.stage == "adaptive"
        assert res.num_faults == 0
        assert np.array_equal(res.values, base.traversal.values)

    def test_sssp_no_plan_matches_adaptive(self):
        graph = small_graph(weighted=True)
        base = adaptive_sssp(graph, 0)
        res = resilient_sssp(graph, 0, guard=NO_SLEEP)
        assert np.array_equal(res.values, base.traversal.values)
        assert res.replayed_seconds == 0.0

    def test_empty_plan_is_not_installed(self):
        graph = small_graph()
        res = resilient_bfs(graph, 0, guard=NO_SLEEP, plan=FaultPlan())
        assert res.attempts == 1 and res.num_faults == 0

    def test_guard_config_validation(self):
        from repro.errors import RuntimeConfigError

        with pytest.raises(RuntimeConfigError):
            GuardConfig(max_retries=0)
        with pytest.raises(RuntimeConfigError):
            GuardConfig(jitter=1.5)
        with pytest.raises(RuntimeConfigError):
            GuardConfig(backoff_factor=0.5)


SEEDED_PLAN = FaultPlan(
    seed=13,
    launch_failure_rate=0.10,
    memory_fault_rate=0.05,
    latency_spike_rate=0.05,
    latency_spike_factor=5.0,
)


class TestResilientUnderFaults:
    @pytest.mark.parametrize("algorithm", ["bfs", "sssp"])
    def test_bit_identical_to_fault_free(self, algorithm):
        graph = small_graph(weighted=algorithm == "sssp")
        runner = resilient_bfs if algorithm == "bfs" else resilient_sssp
        adaptive = adaptive_bfs if algorithm == "bfs" else adaptive_sssp

        base = adaptive(graph, 0)
        guard = GuardConfig(sleeper=lambda s: None, checkpoint_every=2)
        res = runner(graph, 0, guard=guard, plan=SEEDED_PLAN)

        assert np.array_equal(res.values, base.traversal.values)
        assert res.num_faults > 0  # the plan really fired
        # Every injected fault appears in the trace with a recovery action.
        for event in res.trace.faults:
            assert isinstance(event, FaultEvent)
            assert event.action in RECOVERY_ACTIONS
        kinds = {e.kind for e in res.trace.faults}
        assert kinds <= {"launch_failure", "memory_fault", "latency_spike",
                         "error", "non_convergence"}

    def test_runs_are_reproducible(self):
        graph = small_graph()
        guard = GuardConfig(sleeper=lambda s: None, checkpoint_every=2)
        a = resilient_bfs(graph, 0, guard=guard, plan=SEEDED_PLAN)
        b = resilient_bfs(graph, 0, guard=guard, plan=SEEDED_PLAN)
        assert np.array_equal(a.values, b.values)
        assert [(e.kind, e.attempt, e.action) for e in a.trace.faults] == [
            (e.kind, e.attempt, e.action) for e in b.trace.faults
        ]
        assert a.attempts == b.attempts

    def test_memory_fault_recovers_via_checkpoint(self):
        graph = small_graph()
        plan = FaultPlan(seed=2, memory_fault_rate=0.25, max_faults=2)
        guard = GuardConfig(sleeper=lambda s: None, checkpoint_every=1)
        res = resilient_bfs(graph, 0, guard=guard, plan=plan)
        assert np.array_equal(res.values, cpu_bfs(graph, 0).levels)
        actions = res.recovery_actions()
        assert actions.get("checkpoint_restore", 0) >= 1
        assert res.restores >= 1

    def test_variant_fallback_when_adaptive_keeps_failing(self):
        graph = small_graph()
        # Permanent launch failures but a capped budget: the ladder falls
        # back until the injector runs out of faults, then a static
        # variant finishes on the GPU.
        plan = FaultPlan(seed=5, launch_failure_rate=1.0, max_faults=4)
        guard = GuardConfig(sleeper=lambda s: None, retries_per_stage=2)
        res = resilient_bfs(graph, 0, guard=guard, plan=plan)
        assert not res.degraded
        assert res.stage != "adaptive"
        assert res.recovery_actions().get("variant_fallback", 0) >= 1
        assert np.array_equal(res.values, cpu_bfs(graph, 0).levels)

    def test_degrades_to_cpu_when_gpu_unusable(self):
        graph = small_graph()
        plan = FaultPlan(seed=6, launch_failure_rate=1.0)
        guard = GuardConfig(sleeper=lambda s: None, retries_per_stage=1)
        res = resilient_bfs(graph, 0, guard=guard, plan=plan)
        assert res.degraded and res.stage == "cpu"
        assert res.recovery_actions().get("cpu_degradation", 0) == 1
        assert np.array_equal(res.values, cpu_bfs(graph, 0).levels)

    def test_max_retries_short_circuits_ladder(self):
        graph = small_graph()
        plan = FaultPlan(seed=6, launch_failure_rate=1.0)
        guard = GuardConfig(
            sleeper=lambda s: None, max_retries=2, retries_per_stage=10
        )
        res = resilient_bfs(graph, 0, guard=guard, plan=plan)
        assert res.degraded
        assert res.attempts == 3  # 2 tolerated no-progress failures + 1

    def test_degrade_disabled_reraises(self):
        graph = small_graph()
        plan = FaultPlan(seed=6, launch_failure_rate=1.0)
        guard = GuardConfig(
            sleeper=lambda s: None, max_retries=1, degrade_to_cpu=False
        )
        with pytest.raises(LaunchError):
            resilient_bfs(graph, 0, guard=guard, plan=plan)

    def test_non_convergence_degrades(self):
        graph = small_graph()
        guard = GuardConfig(sleeper=lambda s: None, max_iterations=1)
        res = resilient_bfs(graph, 0, guard=guard)
        assert res.degraded
        kinds = [e.kind for e in res.trace.faults]
        assert "non_convergence" in kinds

    def test_backoff_sleeps_and_reports(self):
        graph = small_graph()
        slept = []
        plan = FaultPlan(seed=5, launch_failure_rate=1.0, max_faults=2)
        guard = GuardConfig(
            sleeper=slept.append, backoff_base_s=0.01, backoff_max_s=0.04
        )
        res = resilient_bfs(graph, 0, guard=guard, plan=plan)
        assert len(slept) >= 1
        assert res.backoff_seconds == pytest.approx(sum(slept))
        # exponential-with-jitter stays within the configured envelope
        for delay in slept:
            assert 0 < delay <= 0.04 * (1 + guard.jitter)


# ----------------------------------------------------------------------
# Extension algorithms through the guard (PageRank drill)
# ----------------------------------------------------------------------

class TestPagerankRecovery:
    """Satellite drill: the engine refactor gives PageRank the same
    checkpoint/resume and fault-recovery guarantees BFS always had."""

    def _graph(self):
        return erdos_renyi_graph(600, 3600, seed=21)

    def test_checkpoint_resume_bit_identical(self):
        from repro.kernels import StaticPolicy
        from repro.kernels.pagerank import traverse_pagerank
        from repro.kernels.variants import Variant

        graph = self._graph()
        policy = lambda: StaticPolicy(Variant.parse("U_B_QU"))  # noqa: E731
        baseline = traverse_pagerank(graph, policy())

        keeper = CheckpointKeeper(every=2)
        traverse_pagerank(graph, policy(), checkpoint_keeper=keeper)
        cp = keeper.restore("pagerank", -1)
        assert cp is not None and cp.next_iteration >= 2
        # The checkpoint carries PageRank's private residual array.
        assert cp.extra is not None and "residual" in cp.extra

        resumed = traverse_pagerank(graph, policy(), resume_from=cp)
        assert np.array_equal(resumed.values, baseline.values)
        assert [r.iteration for r in resumed.iterations] == [
            r.iteration for r in baseline.iterations
        ]

    def test_faulted_run_recovers_bit_identical(self):
        from repro.core import adaptive_pagerank
        from repro.reliability import resilient_run

        graph = self._graph()
        clean = adaptive_pagerank(graph)
        plan = FaultPlan(seed=13, memory_fault_rate=0.3, max_faults=2)
        guard = GuardConfig(sleeper=lambda s: None, checkpoint_every=2, seed=5)
        res = resilient_run(graph, "pagerank", guard=guard, plan=plan)

        assert res.num_faults > 0  # the plan really fired
        assert not res.degraded
        assert np.array_equal(res.values, clean.values)  # bit-identical ranks
        for event in res.trace.faults:
            assert event.action in RECOVERY_ACTIONS

    def test_faulted_runs_reproducible(self):
        from repro.reliability import resilient_run

        graph = self._graph()
        plan = FaultPlan(seed=13, memory_fault_rate=0.3, max_faults=2)
        guard = GuardConfig(sleeper=lambda s: None, checkpoint_every=2, seed=5)
        a = resilient_run(graph, "pagerank", guard=guard, plan=plan)
        b = resilient_run(graph, "pagerank", guard=guard, plan=plan)
        assert np.array_equal(a.values, b.values)
        assert a.attempts == b.attempts
        assert [(e.kind, e.attempt, e.action) for e in a.trace.faults] == [
            (e.kind, e.attempt, e.action) for e in b.trace.faults
        ]


class TestResilientSourceValidation:
    """Regression: a bad source used to burn the whole retry/fallback
    ladder (with its backoff sleeps) on a query that can never succeed."""

    def test_bad_source_rejected_without_retries(self):
        from repro.errors import GraphError
        from repro.reliability import resilient_run

        graph = erdos_renyi_graph(120, 500, seed=3)
        slept = []
        guard = GuardConfig(sleeper=slept.append, backoff_base_s=0.01)
        with pytest.raises(GraphError, match="out of range"):
            resilient_run(graph, "bfs", 10_000, guard=guard)
        assert slept == []  # rejected up front: no backoff ladder
