"""Tests for repro.graph.transforms."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import from_edge_list
from repro.graph.generators import chain_graph, erdos_renyi_graph
from repro.graph.properties import is_symmetric
from repro.graph.transforms import (
    edge_arrays,
    induced_subgraph,
    largest_weakly_connected_subgraph,
    relabel,
    symmetrize,
    weakly_connected_components,
)


class TestEdgeArrays:
    def test_roundtrip(self, tiny_graph):
        src, dst, w = edge_arrays(tiny_graph)
        assert w is None
        rebuilt = from_edge_list(src, dst, num_nodes=tiny_graph.num_nodes)
        assert rebuilt == tiny_graph

    def test_weighted(self, tiny_weighted):
        _, _, w = edge_arrays(tiny_weighted)
        assert np.allclose(w, tiny_weighted.weights)


class TestSymmetrize:
    def test_makes_symmetric(self, tiny_graph):
        assert is_symmetric(symmetrize(tiny_graph))

    def test_idempotent_on_symmetric(self):
        g = chain_graph(6)
        assert symmetrize(g) == g

    def test_keeps_min_weight(self):
        g = from_edge_list([0, 1], [1, 0], weights=[5.0, 2.0], num_nodes=2)
        s = symmetrize(g)
        assert s.edge_weights_of(0).tolist() == [2.0]
        assert s.edge_weights_of(1).tolist() == [2.0]


class TestRelabel:
    def test_reverse_permutation(self, tiny_graph):
        n = tiny_graph.num_nodes
        mapping = np.arange(n)[::-1]
        g = relabel(tiny_graph, mapping)
        # edge 0->1 becomes 4->3
        assert 3 in g.neighbors(4).tolist()

    def test_identity(self, tiny_graph):
        assert relabel(tiny_graph, np.arange(5)) == tiny_graph

    def test_rejects_non_permutation(self, tiny_graph):
        with pytest.raises(GraphError, match="permutation"):
            relabel(tiny_graph, np.zeros(5, dtype=np.int64))

    def test_rejects_wrong_shape(self, tiny_graph):
        with pytest.raises(GraphError):
            relabel(tiny_graph, np.arange(3))


class TestDegreeSortRelabel:
    def test_degrees_sorted(self, skewed_graph):
        from repro.graph.transforms import degree_sort_relabel

        g, _ = degree_sort_relabel(skewed_graph)
        deg = g.out_degrees
        assert np.all(deg[:-1] >= deg[1:])

    def test_mapping_roundtrip(self, skewed_graph):
        from repro.graph.transforms import degree_sort_relabel

        g, mapping = degree_sort_relabel(skewed_graph)
        # Each old node's degree must survive under its new id.
        assert np.array_equal(
            g.out_degrees[mapping], skewed_graph.out_degrees
        )

    def test_results_map_back(self):
        from repro.graph.properties import bfs_levels
        from repro.graph.transforms import degree_sort_relabel

        g0 = erdos_renyi_graph(300, 1500, seed=12)
        g1, mapping = degree_sort_relabel(g0)
        levels0 = bfs_levels(g0, 7)
        levels1 = bfs_levels(g1, int(mapping[7]))
        assert np.array_equal(levels1[mapping], levels0)

    def test_reduces_thread_divergence(self):
        """The point of the transform: warp-max sums drop on skewed
        degree sequences when similar degrees share warps."""
        from repro.gpusim.warp import profile_warps
        from repro.graph.generators import power_law_graph
        from repro.graph.transforms import degree_sort_relabel

        g = power_law_graph(4000, alpha=1.8, max_degree=200, seed=13)
        sorted_g, _ = degree_sort_relabel(g)
        before = profile_warps(g.out_degrees.astype(float)).issue_cycles
        after = profile_warps(sorted_g.out_degrees.astype(float)).issue_cycles
        assert after < 0.7 * before

    def test_ascending_option(self, skewed_graph):
        from repro.graph.transforms import degree_sort_relabel

        g, _ = degree_sort_relabel(skewed_graph, descending=False)
        deg = g.out_degrees
        assert np.all(deg[:-1] <= deg[1:])


class TestInducedSubgraph:
    def test_keeps_internal_edges(self, tiny_graph):
        sub, kept = induced_subgraph(tiny_graph, [0, 1, 2])
        assert kept.tolist() == [0, 1, 2]
        assert sub.num_nodes == 3
        # edges 0->1, 0->2, 1->2 survive; 2->3, 2->4, 3->4 do not
        assert sub.num_edges == 3

    def test_ids_compacted(self, tiny_graph):
        sub, kept = induced_subgraph(tiny_graph, [2, 4])
        assert sub.num_nodes == 2
        assert kept.tolist() == [2, 4]
        assert sub.neighbors(0).tolist() == [1]  # 2->4 became 0->1

    def test_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            induced_subgraph(tiny_graph, [99])

    def test_preserves_weights(self, tiny_weighted):
        sub, _ = induced_subgraph(tiny_weighted, [0, 1, 2])
        assert sub.has_weights


class TestComponents:
    def test_single_component(self):
        labels = weakly_connected_components(chain_graph(8))
        assert len(set(labels.tolist())) == 1

    def test_two_components(self):
        g = from_edge_list([0, 2], [1, 3], num_nodes=4)
        labels = weakly_connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_isolated_nodes(self):
        g = from_edge_list([0], [1], num_nodes=4)
        labels = weakly_connected_components(g)
        assert len(set(labels.tolist())) == 3

    def test_direction_ignored(self):
        # 0 -> 1 <- 2: weakly connected despite no directed path 0 -> 2.
        g = from_edge_list([0, 2], [1, 1], num_nodes=3)
        labels = weakly_connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graph.builder import to_networkx

        g = erdos_renyi_graph(120, 100, seed=9)
        labels = weakly_connected_components(g)
        nx_comps = list(nx.weakly_connected_components(to_networkx(g)))
        assert len(set(labels.tolist())) == len(nx_comps)

    def test_largest_component_subgraph(self):
        g = from_edge_list(
            [0, 1, 2, 10], [1, 2, 3, 11], num_nodes=12
        )
        sub, kept = largest_weakly_connected_subgraph(g)
        assert sub.num_nodes == 4
        assert kept.tolist() == [0, 1, 2, 3]
