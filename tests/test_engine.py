"""Tests for repro.engine: the registry and the cross-cutting seams
(watchdog, checkpointing, memory budget, observer) that every
registered algorithm now inherits from the shared iteration engine."""

import numpy as np
import pytest

from repro.core import adaptive_run, run_static
from repro.engine import AlgorithmInfo, get_algorithm, registered_algorithms
from repro.errors import KernelError, NonConvergenceError
from repro.graph.datasets import make_dataset
from repro.gpusim.allocator import MemoryBudget
from repro.gpusim.device import TESLA_C2070
from repro.obs import Observer
from repro.reliability import CheckpointKeeper, Watchdog, resilient_run

BUILTINS = ("bfs", "sssp", "pagerank", "cc", "kcore", "dobfs")
#: every algorithm the decision maker can drive
ADAPTIVE = ("bfs", "sssp", "pagerank", "cc", "kcore")


@pytest.fixture(scope="module")
def graph():
    # Weighted so the same workload serves every algorithm (SSSP needs
    # weights; the others ignore them).
    return make_dataset("p2p", scale=0.15, weighted=True, seed=9)


def _source_for(info, graph):
    return 0 if info.source_based else None


def _matches(info, values, oracle) -> bool:
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.floating):
        return bool(np.array_equal(values, oracle))
    if not info.cpu_exact:
        # Approximate fixpoint (PageRank): GPU and CPU stop at different
        # states, both within tolerance/(1-damping) of the true ranks.
        return bool(np.allclose(values, oracle, rtol=0.0, atol=2e-6 / 0.15))
    return bool(np.allclose(values, oracle))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_builtins_registered(self):
        names = {info.name for info in registered_algorithms()}
        assert set(BUILTINS) <= names

    def test_unknown_name_lists_known(self):
        with pytest.raises(KernelError, match="unknown algorithm") as exc:
            get_algorithm("triangle-count")
        for name in BUILTINS:
            assert name in str(exc.value)

    def test_capability_flags(self):
        flags = {name: get_algorithm(name).capability_flags() for name in BUILTINS}
        assert flags["bfs"]["ordered_support"]
        assert flags["sssp"]["weighted"] and flags["sssp"]["ordered_support"]
        assert not flags["pagerank"]["source_based"]
        assert not flags["pagerank"]["cpu_exact"]
        assert not flags["cc"]["source_based"]
        assert not flags["kcore"]["source_based"]
        assert not flags["dobfs"]["adaptive_eligible"]
        assert not flags["dobfs"]["supports_variants"]
        for name in BUILTINS:
            assert flags[name]["checkpointable"]

    def test_every_builtin_has_cpu_reference(self, graph):
        for name in BUILTINS:
            info = get_algorithm(name)
            assert info.cpu_run is not None
            values, cpu = info.cpu_run(graph, 0)
            assert len(values) == graph.num_nodes
            assert cpu.seconds > 0

    def test_registration_shadowing_last_wins(self):
        info = AlgorithmInfo(
            name="engine-test-stub",
            summary="stub",
            make_spec=lambda **kw: None,
        )
        from repro.engine import register_algorithm

        register_algorithm(info)
        assert get_algorithm("engine-test-stub") is info
        assert any(
            i.name == "engine-test-stub" for i in registered_algorithms()
        )


# ----------------------------------------------------------------------
# Generic runners
# ----------------------------------------------------------------------

class TestAdaptiveRun:
    @pytest.mark.parametrize("name", ADAPTIVE)
    def test_matches_cpu_reference(self, graph, name):
        info = get_algorithm(name)
        result = adaptive_run(graph, name, _source_for(info, graph))
        oracle, _ = info.cpu_run(graph, 0 if info.source_based else -1)
        assert _matches(info, result.values, oracle)
        assert result.trace.num_decisions >= 1

    def test_source_required_for_source_based(self, graph):
        with pytest.raises(KernelError, match="requires a source"):
            adaptive_run(graph, "bfs")

    def test_rejects_non_adaptive_algorithm(self, graph):
        with pytest.raises(KernelError, match="adaptive-eligible"):
            adaptive_run(graph, "dobfs", 0)

    def test_named_wrappers_delegate(self, graph):
        from repro.core import adaptive_pagerank

        a = adaptive_run(graph, "pagerank", tolerance=1e-5)
        b = adaptive_pagerank(graph, tolerance=1e-5)
        assert np.array_equal(a.values, b.values)
        assert a.total_seconds == b.total_seconds


class TestResilientRun:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_fault_free_matches_cpu_reference(self, graph, name):
        info = get_algorithm(name)
        result = resilient_run(graph, name, _source_for(info, graph))
        oracle, _ = info.cpu_run(graph, 0 if info.source_based else -1)
        assert _matches(info, result.values, oracle)
        assert result.attempts == 1 and not result.degraded

    def test_dobfs_served_by_default_stage(self, graph):
        result = resilient_run(graph, "dobfs", 0)
        assert result.stage == "default"


# ----------------------------------------------------------------------
# Cross-cutting seams, per algorithm
# ----------------------------------------------------------------------

def _run(name, graph, **kwargs):
    info = get_algorithm(name)
    source = _source_for(info, graph)
    if info.adaptive_eligible:
        return adaptive_run(graph, name, source, **kwargs)
    return info.run_default(graph, source if source is not None else -1, **kwargs)


class TestEngineSeams:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_watchdog_budget_enforced(self, graph, name):
        with pytest.raises(NonConvergenceError, match="iteration budget"):
            _run(name, graph, watchdog=Watchdog(max_iterations=1))

    @pytest.mark.parametrize("name", BUILTINS)
    def test_checkpoints_offered(self, graph, name):
        keeper = CheckpointKeeper(every=1)
        result = _run(name, graph, checkpoint_keeper=keeper)
        assert keeper.saves >= 1
        cp = keeper.latest
        assert cp.algorithm == name
        assert np.array_equal(cp.values, result.values)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_checkpoint_resume_bit_identical(self, graph, name):
        baseline = _run(name, graph)
        keeper = CheckpointKeeper(every=2)
        _run(name, graph, checkpoint_keeper=keeper)
        source = 0 if get_algorithm(name).source_based else -1
        cp = keeper.restore(name, source)
        assert cp is not None and cp.next_iteration >= 2
        resumed = _run(name, graph, resume_from=cp)
        assert np.array_equal(resumed.values, baseline.values)
        assert resumed.num_iterations == baseline.num_iterations

    @pytest.mark.parametrize("name", BUILTINS)
    def test_memory_budget_charged_and_reported(self, graph, name):
        memory = MemoryBudget("1G", device=TESLA_C2070)
        result = _run(name, graph, memory=memory)
        report = getattr(result, "memory", None) or memory.report()
        assert report.peak_bytes > 0
        assert report.capacity_bytes == 2**30

    @pytest.mark.parametrize("name", BUILTINS)
    def test_observer_sees_every_algorithm(self, graph, name):
        observer = Observer()
        result = _run(name, graph, observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["frame.iterations"]["value"] == result.num_iterations
        assert snap["gpusim.kernel_launches"]["value"] > 0
        names = [s.name for s in observer.spans.spans]
        assert names.count("iteration") == result.num_iterations


# ----------------------------------------------------------------------
# run_static generality
# ----------------------------------------------------------------------

class TestRunStaticGeneric:
    @pytest.mark.parametrize("name", ("pagerank", "cc", "kcore"))
    def test_extension_variants_dispatch(self, graph, name):
        info = get_algorithm(name)
        result = run_static(graph, -1, name, info.default_variant)
        oracle, _ = info.cpu_run(graph, -1)
        assert _matches(info, result.values, oracle)

    def test_params_forwarded(self, graph):
        loose = run_static(graph, -1, "pagerank", "U_B_QU", tolerance=1e-3)
        tight = run_static(graph, -1, "pagerank", "U_B_QU", tolerance=1e-7)
        assert loose.num_iterations < tight.num_iterations
