"""Tests for repro.gpusim.reduction, repro.gpusim.scan,
repro.gpusim.transfer and repro.gpusim.timeline."""

import numpy as np
import pytest

from repro.gpusim.device import TESLA_C2070
from repro.gpusim.kernel import CostModel, KernelTally
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.reduction import plan_reduction, reduce_min, reduction_tallies
from repro.gpusim.scan import exclusive_scan, scan_tallies
from repro.gpusim.timeline import Timeline
from repro.gpusim.transfer import record_transfer, transfer_seconds


class TestReduction:
    def test_functional_min(self):
        assert reduce_min(np.array([5.0, 2.0, 9.0])) == 2.0

    def test_functional_empty_raises(self):
        with pytest.raises(ValueError):
            reduce_min(np.array([]))

    def test_plan_pass_structure(self):
        plan = plan_reduction(1_000_000, threads_per_block=256)
        # 2*256 = 512 elements per block: 1e6 -> 1954 -> 4 -> 1.
        assert plan.passes[0] == 1_000_000
        assert plan.num_kernels == 3

    def test_plan_small_input(self):
        assert plan_reduction(10).num_kernels == 1

    def test_plan_single_element(self):
        assert plan_reduction(1).passes == (1,)

    def test_tallies_count_matches_plan(self):
        tallies = reduction_tallies(100_000, TESLA_C2070)
        assert len(tallies) == plan_reduction(100_000).num_kernels

    def test_tallies_priceable(self):
        model = CostModel(TESLA_C2070)
        total = sum(model.price(t).seconds for t in reduction_tallies(50_000, TESLA_C2070))
        assert total > 0

    def test_larger_inputs_cost_more(self):
        model = CostModel(TESLA_C2070)
        small = sum(model.price(t).seconds for t in reduction_tallies(1_000, TESLA_C2070))
        large = sum(model.price(t).seconds for t in reduction_tallies(1_000_000, TESLA_C2070))
        assert large > small


class TestScan:
    def test_functional_exclusive(self):
        assert exclusive_scan([1, 0, 1, 1, 0]).tolist() == [0, 1, 1, 2, 3]

    def test_functional_empty(self):
        assert exclusive_scan([]).size == 0

    def test_functional_single(self):
        assert exclusive_scan([5]).tolist() == [0]

    def test_tallies_single_block(self):
        assert len(scan_tallies(100, TESLA_C2070)) == 1

    def test_tallies_multi_block(self):
        assert len(scan_tallies(100_000, TESLA_C2070)) == 3

    def test_tallies_zero(self):
        assert scan_tallies(0, TESLA_C2070) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            scan_tallies(-1, TESLA_C2070)


class TestTransfer:
    def test_zero_bytes_free(self):
        assert transfer_seconds(0, TESLA_C2070) == 0.0

    def test_latency_floor(self):
        assert transfer_seconds(4, TESLA_C2070) >= TESLA_C2070.pcie_latency_s

    def test_bandwidth_term(self):
        one_mb = transfer_seconds(2**20, TESLA_C2070)
        ten_mb = transfer_seconds(10 * 2**20, TESLA_C2070)
        assert ten_mb > 5 * one_mb

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            transfer_seconds(-1, TESLA_C2070)

    def test_record_direction_validation(self):
        with pytest.raises(ValueError):
            record_transfer("sideways", 10, TESLA_C2070)


class TestTimeline:
    def _kernel(self, name="k", seconds_scale=1.0):
        tally = KernelTally(
            name=name, launch=LaunchConfig(1, 32), issue_cycles=1000.0 * seconds_scale
        )
        cost = CostModel(TESLA_C2070).price(tally)
        return tally, cost

    def test_totals_accumulate(self):
        tl = Timeline()
        tally, cost = self._kernel()
        tl.add_kernel(0, tally, cost, "U_T_BM")
        tl.add_transfer(record_transfer("h2d", 1000, TESLA_C2070))
        tl.add_host_seconds(0.5)
        assert tl.total_seconds == pytest.approx(
            cost.seconds + tl.transfer_seconds + 0.5
        )
        assert tl.num_launches == 1

    def test_negative_host_time_rejected(self):
        with pytest.raises(ValueError):
            Timeline().add_host_seconds(-1)

    def test_seconds_by_kernel_groups_prefix(self):
        tl = Timeline()
        for name in ("reduce[0]", "reduce[1]", "comp"):
            tally, cost = self._kernel(name)
            tl.add_kernel(0, tally, cost)
        by = tl.seconds_by_kernel()
        assert set(by) == {"reduce", "comp"}

    def test_seconds_by_variant(self):
        tl = Timeline()
        for variant in ("U_T_BM", "U_T_BM", "U_B_QU"):
            tally, cost = self._kernel()
            tl.add_kernel(0, tally, cost, variant)
        by = tl.seconds_by_variant()
        assert by["U_T_BM"] == pytest.approx(2 * by["U_B_QU"])

    def test_iter_iterations_unique(self):
        tl = Timeline()
        for it in (0, 0, 1, 2, 2):
            tally, cost = self._kernel()
            tl.add_kernel(it, tally, cost)
        assert list(tl.iter_iterations()) == [0, 1, 2]
