"""Tests for the per-iteration oracle and decision-quality scoring."""

import numpy as np
import pytest

from repro.core import (
    adaptive_bfs,
    adaptive_sssp,
    per_iteration_oracle,
    decision_quality,
    run_static,
)
from repro.core.oracle import IterationCosts, OracleReport
from repro.errors import KernelError
from repro.graph.generators import (
    attach_uniform_weights,
    chain_graph,
    erdos_renyi_graph,
    power_law_graph,
)


@pytest.fixture(scope="module")
def workload():
    g = attach_uniform_weights(
        power_law_graph(15_000, alpha=1.9, max_degree=200, seed=13), seed=14
    )
    src = int(np.argmax(g.out_degrees))
    return g, src


class TestOracleReport:
    def test_covers_all_iterations(self, workload):
        g, src = workload
        report = per_iteration_oracle(g, src, "sssp")
        ad = adaptive_sssp(g, src)
        assert len(report.iterations) == ad.num_iterations

    def test_candidate_set(self, workload):
        g, src = workload
        report = per_iteration_oracle(g, src, "bfs")
        assert set(report.iterations[0].seconds_by_variant) == {
            "U_T_BM", "U_T_QU", "U_B_BM", "U_B_QU",
        }

    def test_custom_candidates(self, workload):
        g, src = workload
        report = per_iteration_oracle(
            g, src, "bfs", variants=["U_T_BM", "U_W_QU"]
        )
        assert set(report.iterations[0].seconds_by_variant) == {"U_T_BM", "U_W_QU"}

    def test_oracle_lower_bounds_statics(self, workload):
        g, src = workload
        report = per_iteration_oracle(g, src, "sssp")
        for code in ("U_T_BM", "U_T_QU", "U_B_BM", "U_B_QU"):
            assert report.oracle_seconds <= report.static_seconds(code) + 1e-12

    def test_best_static_identified(self, workload):
        g, src = workload
        report = per_iteration_oracle(g, src, "sssp")
        best_code, best_secs = report.best_static()
        assert best_secs == min(
            report.static_seconds(c)
            for c in report.iterations[0].seconds_by_variant
        )

    def test_matches_frame_static_times(self, workload):
        """The oracle's static re-pricing must track the real frame run
        (same tallies, minus host-init bookkeeping)."""
        g, src = workload
        report = per_iteration_oracle(g, src, "sssp")
        real = run_static(g, src, "sssp", "U_T_BM")
        assert report.static_seconds("U_T_BM") == pytest.approx(
            real.total_seconds, rel=0.05
        )

    def test_requires_weights_for_sssp(self):
        g = chain_graph(10)
        with pytest.raises(KernelError):
            per_iteration_oracle(g, 0, "sssp")


class TestSinglePropertySource:
    def test_launch_geometry_derived_once_per_variant(self, workload, monkeypatch):
        """Regression: the oracle used to re-read the graph's average
        outdegree and re-derive each variant's launch geometry on every
        iteration — |variants| x |iterations| recomputations of the same
        numbers, and a second property source that could drift from the
        inspector's profile that labels learned-policy features."""
        from repro.kernels.variants import Variant

        calls = []
        original = Variant.threads_per_block

        def counting(self, avg_out_degree, device):
            calls.append(avg_out_degree)
            return original(self, avg_out_degree, device)

        monkeypatch.setattr(Variant, "threads_per_block", counting)
        g, src = workload
        report = per_iteration_oracle(g, src, "sssp")
        assert len(report.iterations) > 1
        # Once per candidate variant, not once per (variant, iteration).
        assert len(calls) == len(report.iterations[0].seconds_by_variant)
        # And every derivation saw the inspector's single source value.
        from repro.core import StaticAttributes

        assert set(calls) == {StaticAttributes.of(g).avg_out_degree}


class TestDecisionQuality:
    def test_adaptive_low_regret(self, workload):
        g, src = workload
        report = per_iteration_oracle(g, src, "sssp")
        q = decision_quality(adaptive_sssp(g, src), report)
        assert 0.0 <= q.agreement <= 1.0
        assert q.regret < 0.25

    def test_static_regret_at_least_adaptive(self, workload):
        """The adaptive runtime's realized time is within the static
        envelope the oracle computes."""
        g, src = workload
        report = per_iteration_oracle(g, src, "sssp")
        q = decision_quality(adaptive_sssp(g, src), report)
        _, best_static_secs = report.best_static()
        assert q.realized_seconds <= best_static_secs * 1.05

    def test_oracle_schedule_has_zero_regret(self, workload):
        g, src = workload
        report = per_iteration_oracle(g, src, "bfs")
        oracle_time = report.seconds_for(lambda it: it.best_variant)
        assert oracle_time == pytest.approx(report.oracle_seconds)

    def test_mismatched_iteration_counts(self, workload):
        g, src = workload
        report = per_iteration_oracle(g, src, "bfs")
        other = adaptive_bfs(erdos_renyi_graph(500, 2_000, seed=1), 0)
        with pytest.raises(KernelError, match="mismatch"):
            decision_quality(other, report)

    def test_unknown_variant_rejected(self):
        report = OracleReport(
            algorithm="bfs",
            iterations=[
                IterationCosts(0, 1, {"U_T_BM": 1e-6}),
            ],
        )
        g = chain_graph(3)
        real = run_static(g, 0, "bfs", "U_B_QU")
        with pytest.raises(KernelError):
            decision_quality(real, report)
