"""Tests for the connected-components extension (CPU baseline + GPU
label propagation + adaptive runtime)."""

import numpy as np
import pytest

from repro import Graph, adaptive_cc, run_cc
from repro.cpu import cpu_connected_components
from repro.errors import KernelError
from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    balanced_tree,
    chain_graph,
    erdos_renyi_graph,
    star_graph,
)
from repro.graph.transforms import weakly_connected_components
from repro.kernels import unordered_variants


@pytest.fixture
def multi_component():
    # Three components: a chain 0-1-2-3, a pair 4-5, an isolated 6.
    return from_edge_list([0, 1, 2, 4], [1, 2, 3, 5], num_nodes=7, symmetric=True)


class TestCpuCc:
    def test_labels_are_component_minima(self, multi_component):
        r = cpu_connected_components(multi_component)
        assert r.labels.tolist() == [0, 0, 0, 0, 4, 4, 6]
        assert r.num_components == 3

    def test_matches_label_propagation_oracle(self):
        g = erdos_renyi_graph(300, 250, seed=7)
        r = cpu_connected_components(g)
        assert np.array_equal(r.labels, weakly_connected_components(g))

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graph.builder import to_networkx

        g = erdos_renyi_graph(200, 150, seed=8)
        r = cpu_connected_components(g)
        assert r.num_components == nx.number_weakly_connected_components(
            to_networkx(g)
        )

    def test_direction_ignored(self):
        g = from_edge_list([0, 2], [1, 1], num_nodes=3)  # 0->1<-2
        assert cpu_connected_components(g).num_components == 1

    def test_empty_graph(self):
        r = cpu_connected_components(CSRGraph.empty(0))
        assert r.num_components == 0

    def test_no_edges(self):
        r = cpu_connected_components(CSRGraph.empty(5))
        assert r.num_components == 5
        assert r.seconds > 0

    def test_operation_counts_positive(self):
        g = chain_graph(50)
        r = cpu_connected_components(g)
        assert r.union_operations == 49
        assert r.find_operations > 0


class TestGpuCc:
    @pytest.mark.parametrize("code", [v.code for v in unordered_variants()])
    def test_all_variants_correct(self, code, multi_component):
        r = run_cc(multi_component, code)
        assert r.values.tolist() == [0, 0, 0, 0, 4, 4, 6]

    def test_directed_input_symmetrized(self):
        g = from_edge_list([0, 2], [1, 1], num_nodes=3)
        r = run_cc(g, "U_T_BM")
        assert r.values.tolist() == [0, 0, 0]

    def test_random_graph_matches_cpu(self):
        g = erdos_renyi_graph(400, 350, seed=9)
        oracle = cpu_connected_components(g).labels
        for code in ("U_T_BM", "U_B_QU", "U_W_QU"):
            assert np.array_equal(run_cc(g, code).values, oracle), code

    def test_initial_workset_is_all_nodes(self):
        g = chain_graph(64)
        r = run_cc(g, "U_T_BM")
        assert r.iterations[0].workset_size == 64

    def test_iterations_bounded_by_pointer_halving(self):
        # Min-label propagation converges in O(diameter) sweeps.
        g = chain_graph(100)
        r = run_cc(g, "U_B_QU")
        assert r.num_iterations <= 101

    def test_star_converges_fast(self):
        r = run_cc(star_graph(500), "U_T_BM")
        assert r.num_iterations <= 3

    def test_max_iterations(self):
        with pytest.raises(KernelError, match="exceeded"):
            run_cc(chain_graph(100), "U_T_BM", max_iterations=2)

    def test_algorithm_tag(self):
        r = run_cc(balanced_tree(2, 4), "U_T_QU")
        assert r.algorithm == "cc"
        assert r.source == -1


class TestAdaptiveCc:
    def test_correct(self, multi_component):
        r = adaptive_cc(multi_component)
        assert r.values.tolist() == [0, 0, 0, 0, 4, 4, 6]

    def test_large_graph_switches_representation(self):
        g = erdos_renyi_graph(60_000, 200_000, seed=10)
        r = adaptive_cc(g)
        oracle = weakly_connected_components(g)
        assert np.array_equal(r.values, oracle)
        # CC starts with all nodes active -> bitmap region first, then
        # drains into the queue region: the reverse BFS trajectory.
        first = r.traversal.iterations[0].variant
        assert first.endswith("BM")
        assert r.num_switches >= 1

    def test_graph_api(self):
        g = Graph.from_edges([(0, 1), (2, 3)], num_nodes=4, symmetric=True)
        r = g.connected_components()
        assert r.values.tolist() == [0, 0, 2, 2]

    def test_graph_api_static_mode(self):
        g = Graph.from_edges([(0, 1)], num_nodes=3, symmetric=True)
        r = g.connected_components(mode="U_B_QU")
        assert r.values.tolist() == [0, 0, 2]


class TestObservedCc:
    def test_run_cc_accepts_observe(self):
        from repro.obs import Observer

        g = erdos_renyi_graph(800, 4000, seed=4)
        observer = Observer()
        result = run_cc(g, "U_T_BM", observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["frame.iterations"]["value"] == result.num_iterations
        assert snap["gpusim.kernel_launches"]["value"] > 0

    def test_observation_does_not_change_result(self):
        from repro.obs import Observer

        g = erdos_renyi_graph(800, 4000, seed=4)
        plain = run_cc(g, "U_B_QU")
        observed = run_cc(g, "U_B_QU", observe=Observer())
        assert np.array_equal(plain.values, observed.values)
        assert plain.total_seconds == observed.total_seconds
