"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.builder import from_edge_list
from repro.graph.properties import _ragged_gather_indices, bfs_levels, is_symmetric


# -- strategies --------------------------------------------------------

@st.composite
def edge_lists(draw, max_nodes=30, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return n, src, dst


@st.composite
def segment_bounds(draw):
    k = draw(st.integers(min_value=0, max_value=20))
    starts, ends = [], []
    cursor = 0
    for _ in range(k):
        cursor += draw(st.integers(0, 5))
        start = cursor
        cursor += draw(st.integers(0, 5))
        starts.append(start)
        ends.append(cursor)
    return np.array(starts, dtype=np.int64), np.array(ends, dtype=np.int64)


# -- properties --------------------------------------------------------

class TestCsrInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_csr_preserves_edge_multiset(self, data):
        n, src, dst = data
        g = from_edge_list(src, dst, num_nodes=n)
        rebuilt = sorted(
            zip(
                np.repeat(np.arange(n), g.out_degrees).tolist(),
                g.col_indices.tolist(),
            )
        )
        assert rebuilt == sorted(zip(src, dst))

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_offsets_well_formed(self, data):
        n, src, dst = data
        g = from_edge_list(src, dst, num_nodes=n)
        offs = g.row_offsets
        assert offs[0] == 0
        assert offs[-1] == len(src)
        assert np.all(np.diff(offs) >= 0)

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_symmetric_flag_produces_symmetric_graph(self, data):
        n, src, dst = data
        g = from_edge_list(src, dst, num_nodes=n, symmetric=True, dedupe=True)
        assert is_symmetric(g)

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_reverse_is_involution(self, data):
        n, src, dst = data
        g = from_edge_list(src, dst, num_nodes=n)
        assert g.reverse().reverse() == g


class TestRaggedGatherProperty:
    @given(segment_bounds())
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_concatenation(self, bounds):
        starts, ends = bounds
        expected = (
            np.concatenate([np.arange(s, e) for s, e in zip(starts, ends)])
            if starts.size
            else np.empty(0, dtype=np.int64)
        )
        got = _ragged_gather_indices(starts, ends)
        assert got.tolist() == expected.tolist()


class TestBfsProperties:
    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_levels_are_valid_distances(self, data):
        """Every edge u->v with u reached implies level[v] <= level[u]+1,
        and every reached non-source node has a parent at level-1."""
        n, src, dst = data
        g = from_edge_list(src, dst, num_nodes=n)
        levels = bfs_levels(g, 0)
        assert levels[0] == 0
        for u, v in zip(src, dst):
            if levels[u] >= 0:
                assert 0 <= levels[v] <= levels[u] + 1
        for v in range(n):
            if levels[v] > 0:
                preds = [u for u, w in zip(src, dst) if w == v]
                assert min(levels[u] for u in preds if levels[u] >= 0) == levels[v] - 1
