"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    attach_uniform_weights,
    balanced_tree,
    chain_graph,
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
    star_graph,
)
from repro.gpusim.device import TESLA_C2070


@pytest.fixture
def device():
    return TESLA_C2070


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """The paper's Figure 7 example-style graph: 5 nodes, mixed degrees."""
    # 0 -> 1, 2; 1 -> 2; 2 -> 3, 4; 3 -> 4; 4 -> (none)
    return from_edge_list(
        [0, 0, 1, 2, 2, 3],
        [1, 2, 2, 3, 4, 4],
        num_nodes=5,
        name="tiny",
    )


@pytest.fixture
def tiny_weighted(tiny_graph) -> CSRGraph:
    return tiny_graph.with_weights([1.0, 4.0, 2.0, 7.0, 3.0, 1.0])


@pytest.fixture
def chain10() -> CSRGraph:
    return chain_graph(10)


@pytest.fixture
def tree_3_4() -> CSRGraph:
    return balanced_tree(3, 4)


@pytest.fixture
def grid_8x8() -> CSRGraph:
    return grid_graph(8, 8)


@pytest.fixture
def star_64() -> CSRGraph:
    return star_graph(64)


@pytest.fixture
def random_graph() -> CSRGraph:
    return erdos_renyi_graph(200, 900, seed=7)


@pytest.fixture
def random_weighted() -> CSRGraph:
    return attach_uniform_weights(erdos_renyi_graph(200, 900, seed=7), seed=8)


@pytest.fixture
def skewed_graph() -> CSRGraph:
    return power_law_graph(
        300, alpha=1.8, min_degree=1, max_degree=80, seed=11, name="skewed"
    )


def assert_bfs_matches_networkx(graph: CSRGraph, source: int, levels: np.ndarray):
    """Check levels against networkx shortest hop counts."""
    import networkx as nx

    from repro.graph.builder import to_networkx

    nxg = to_networkx(graph)
    expected = nx.single_source_shortest_path_length(nxg, source)
    for node in range(graph.num_nodes):
        if node in expected:
            assert levels[node] == expected[node], f"node {node}"
        else:
            assert levels[node] == -1, f"node {node} should be unreachable"


def assert_sssp_matches_networkx(graph: CSRGraph, source: int, dist: np.ndarray):
    """Check distances against networkx Dijkstra."""
    import networkx as nx

    from repro.graph.builder import to_networkx

    nxg = to_networkx(graph)
    expected = nx.single_source_dijkstra_path_length(nxg, source, weight="weight")
    for node in range(graph.num_nodes):
        if node in expected:
            assert np.isclose(dist[node], expected[node]), f"node {node}"
        else:
            assert np.isinf(dist[node]), f"node {node} should be unreachable"
