"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import attach_uniform_weights, erdos_renyi_graph
from repro.graph.io import write_dimacs


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_dataset_and_file_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bfs", "--dataset", "amazon", "--file", "x.gr"]
            )


class TestListingCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for key in ("co-road", "citeseer", "p2p", "amazon", "google", "sns"):
            assert key in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Tesla C2070" in out
        assert "14" in out

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("bfs", "sssp", "pagerank", "cc", "kcore", "dobfs"):
            assert name in out
        for column in ("ordered", "checkpoint", "adaptive", "variants"):
            assert column in out
        # DOBFS owns its policy: no variant codes, not adaptive-eligible.
        dobfs_row = next(l for l in out.splitlines() if "dobfs" in l)
        assert "no" in dobfs_row
        assert "U_T_BM" not in dobfs_row


class TestRunSubcommand:
    def test_run_pagerank_adaptive(self, capsys):
        rc = main(
            ["run", "--algorithm", "pagerank", "--dataset", "citeseer",
             "--scale", "0.02", "--tolerance", "1e-5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pagerank on" in out
        assert "verified vs CPU reference" in out
        assert "MISMATCH" not in out

    def test_run_dobfs_defaults_to_own_driver(self, capsys):
        rc = main(
            ["run", "--algorithm", "dobfs", "--dataset", "citeseer",
             "--scale", "0.02"]
        )
        assert rc == 0
        assert "(default)" in capsys.readouterr().out

    def test_run_cc_static_variant(self, capsys):
        rc = main(
            ["run", "--algorithm", "cc", "--dataset", "p2p",
             "--scale", "0.05", "--mode", "U_B_QU"]
        )
        assert rc == 0
        assert "(U_B_QU)" in capsys.readouterr().out

    def test_run_resilient_mode(self, capsys):
        rc = main(
            ["run", "--algorithm", "kcore", "--dataset", "p2p",
             "--scale", "0.05", "--mode", "resilient"]
        )
        assert rc == 0
        assert "guarded KCORE" in capsys.readouterr().out


class TestCharacterize:
    def test_dataset(self, capsys):
        assert main(["characterize", "--dataset", "p2p", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "avg outdegree" in out
        assert "outdegree distribution" in out

    def test_with_diameter(self, capsys):
        rc = main(
            ["characterize", "--dataset", "co-road", "--scale", "0.01", "--diameter"]
        )
        assert rc == 0
        assert "pseudo-diameter" in capsys.readouterr().out


class TestTraversals:
    def test_bfs_adaptive(self, capsys):
        rc = main(["bfs", "--dataset", "amazon", "--scale", "0.01"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified vs CPU oracle" in out
        assert "MISMATCH" not in out
        assert "decisions" in out

    def test_sssp_static_variant(self, capsys):
        rc = main(["sssp", "--dataset", "p2p", "--scale", "0.1", "--mode", "U_B_QU"])
        assert rc == 0
        assert "speedup" in capsys.readouterr().out

    def test_sssp_warp_mapping(self, capsys):
        rc = main(
            ["sssp", "--dataset", "amazon", "--scale", "0.01", "--warp-mapping"]
        )
        assert rc == 0

    def test_explicit_source(self, capsys):
        import re

        rc = main(["bfs", "--dataset", "p2p", "--scale", "0.1", "--source", "5"])
        assert rc == 0
        assert re.search(r"source\s*\|\s*5\b", capsys.readouterr().out)

    def test_file_input(self, tmp_path, capsys):
        g = attach_uniform_weights(erdos_renyi_graph(60, 300, seed=1), seed=2)
        path = tmp_path / "little.gr"
        write_dimacs(g, path)
        rc = main(["sssp", "--file", str(path)])
        assert rc == 0
        assert "little" in capsys.readouterr().out


class TestCompare:
    def test_compare_sssp(self, capsys):
        rc = main(["compare", "--dataset", "p2p", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in ("U_T_BM", "U_B_QU", "adaptive"):
            assert code in out

    def test_compare_extended(self, capsys):
        rc = main(
            ["compare", "--dataset", "amazon", "--scale", "0.01", "--extended"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "U_W_QU" in out
        assert "adaptive+W" in out


class TestSweep:
    def test_sweep_t3(self, capsys):
        rc = main(["sweep-t3", "--dataset", "p2p", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best T3" in out
        assert "13%" in out


class TestExtensionCommands:
    def test_cc(self, capsys):
        rc = main(["cc", "--dataset", "p2p", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "components" in out
        assert "MISMATCH" not in out

    def test_cc_static_mode(self, capsys):
        rc = main(["cc", "--dataset", "p2p", "--scale", "0.05", "--mode", "U_B_QU"])
        assert rc == 0

    def test_kcore(self, capsys):
        rc = main(["kcore", "--dataset", "p2p", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max core" in out
        assert "MISMATCH" not in out

    def test_pagerank(self, capsys):
        rc = main(["pagerank", "--dataset", "p2p", "--scale", "0.05",
                   "--tolerance", "1e-5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top nodes" in out
        assert "MISMATCH" not in out

    def test_hybrid(self, capsys):
        rc = main(
            ["hybrid", "--dataset", "co-road", "--scale", "0.01",
             "--algorithm", "bfs"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "CPU iterations" in out
        assert "MISMATCH" not in out

    def test_oracle(self, capsys):
        rc = main(["oracle", "--dataset", "p2p", "--scale", "0.1",
                   "--algorithm", "bfs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "regret" in out
        assert "agreement" in out

    def test_trace_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "t.json"
        rc = main(
            ["bfs", "--dataset", "p2p", "--scale", "0.05", "--trace", str(path)]
        )
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestReliability:
    PLAN = (
        '{"seed": 3, "launch_failure_rate": 0.1, "memory_fault_rate": 0.05}'
    )

    def test_reliability_subcommand_fault_free(self, capsys):
        rc = main(["reliability", "--dataset", "p2p", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served by" in out
        assert "MISMATCH" not in out

    def test_reliability_with_fault_plan(self, capsys):
        rc = main(
            ["reliability", "--dataset", "p2p", "--scale", "0.1",
             "--algorithm", "sssp", "--fault-plan", self.PLAN,
             "--checkpoint-every", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults seen" in out
        assert "MISMATCH" not in out

    def test_resilient_mode_on_bfs(self, capsys):
        rc = main(
            ["bfs", "--dataset", "p2p", "--scale", "0.1",
             "--mode", "resilient", "--fault-plan", self.PLAN]
        )
        assert rc == 0
        assert "served by" in capsys.readouterr().out


class TestShardedRun:
    def test_run_devices_fault_free(self, capsys):
        rc = main(
            ["run", "--algorithm", "bfs", "--dataset", "sns",
             "--scale", "0.02", "--devices", "4",
             "--partition", "balanced"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sharded x4, balanced" in out
        assert "exchange volume" in out
        assert "verified vs CPU reference" in out
        assert "MISMATCH" not in out

    def test_run_devices_with_device_loss(self, capsys, tmp_path):
        import json

        manifest_path = tmp_path / "shard.json"
        plan = '{"seed": 11, "device_loss_rate": 0.25, "device": 1, "max_faults": 1}'
        rc = main(
            ["run", "--algorithm", "sssp", "--dataset", "sns",
             "--scale", "0.02", "--devices", "4", "--fault-plan", plan,
             "--checkpoint-every", "2", "--manifest", str(manifest_path)]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "MISMATCH" not in captured.out
        assert "recovery rung" in captured.out
        doc = json.loads(manifest_path.read_text())
        assert doc["mode"] == "sharded"
        assert doc["result"]["num_devices"] == 4
        if doc["faults"]:
            assert doc["reliability"]["recovery_rung"] in (
                "retry", "restore", "cpu"
            )
            assert "[recovery:" in captured.err

    def test_devices_rejects_non_batchable(self, capsys):
        rc = main(
            ["run", "--algorithm", "pagerank", "--dataset", "sns",
             "--scale", "0.02", "--devices", "2"]
        )
        assert rc == 2
        assert "batch" in capsys.readouterr().err


class TestExitCodes:
    def test_repro_error_exits_2(self, capsys):
        # source beyond the graph is a ReproError: one line on stderr,
        # exit code 2
        rc = main(
            ["bfs", "--dataset", "p2p", "--scale", "0.05",
             "--source", "99999999"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1

    def test_bad_fault_plan_exits_2(self, capsys):
        rc = main(
            ["reliability", "--dataset", "p2p", "--scale", "0.05",
             "--fault-plan", "{bad json"]
        )
        assert rc == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_fault_plan_unknown_key_named(self, capsys):
        rc = main(
            ["reliability", "--dataset", "p2p", "--scale", "0.05",
             "--fault-plan", '{"seed": 1, "lunch_failure_rate": 0.1}']
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "lunch_failure_rate" in err
        assert len(err.strip().splitlines()) == 1

    def test_fault_plan_unknown_kind_named(self, capsys):
        rc = main(
            ["reliability", "--dataset", "p2p", "--scale", "0.05",
             "--fault-plan", '{"kinds": ["cosmic_ray"]}']
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "cosmic_ray" in err
        assert len(err.strip().splitlines()) == 1

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli_mod

        def boom(args):
            raise KeyboardInterrupt

        args = build_parser().parse_args(["datasets"])
        args.func = boom

        class FixedParser:
            def parse_args(self, argv=None):
                return args

        monkeypatch.setattr(cli_mod, "build_parser", FixedParser)
        assert cli_mod.main(["datasets"]) == 130
        assert "interrupted" in capsys.readouterr().err


class TestMemoryBudgetFlags:
    def test_ample_budget_reports_memory(self, capsys):
        rc = main(
            ["bfs", "--dataset", "p2p", "--scale", "0.05",
             "--mem-budget", "64M"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "memory budget" in out
        assert "memory peak" in out
        assert "MISMATCH" not in out

    def test_oom_exits_2_with_one_line_stderr(self, capsys):
        rc = main(
            ["bfs", "--dataset", "p2p", "--scale", "0.05",
             "--mem-budget", "1k"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "device memory budget exhausted" in err
        assert len(err.strip().splitlines()) == 1

    def test_resilient_mode_recovers_from_oom(self, capsys):
        from repro.graph.datasets import make_dataset
        from repro.gpusim.memory import traversal_state_bytes

        graph = make_dataset("p2p", scale=0.05, weighted=False, seed=1)
        budget = graph.device_bytes() + traversal_state_bytes(graph.num_nodes) + 16
        rc = main(
            ["bfs", "--dataset", "p2p", "--scale", "0.05",
             "--mode", "resilient", "--mem-budget", str(budget)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "OOM ladder rung" in out
        assert "workset_spill" in out
        assert "MISMATCH" not in out

    def test_bad_budget_spec_exits_2(self, capsys):
        rc = main(
            ["bfs", "--dataset", "p2p", "--scale", "0.05",
             "--mem-budget", "lots"]
        )
        assert rc == 2
        assert "memory size" in capsys.readouterr().err


class TestIngestionFlags:
    def _messy_file(self, tmp_path):
        path = tmp_path / "messy.gr"
        path.write_text(
            "p sp 3 3\na 1 2 1\na 2 2 1\na 2 3 1\n", encoding="utf-8"
        )
        return str(path)

    def test_strict_io_exits_2_naming_file_and_line(self, tmp_path, capsys):
        rc = main(["bfs", "--file", self._messy_file(tmp_path),
                   "--source", "0", "--strict-io"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "messy.gr:3" in err
        assert len(err.strip().splitlines()) == 1

    def test_lenient_io_repairs_and_reports(self, tmp_path, capsys):
        rc = main(["bfs", "--file", self._messy_file(tmp_path),
                   "--source", "0", "--lenient-io"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[ingest]" in out
        assert "self-loops 1" in out

    def test_max_edges_exits_2(self, tmp_path, capsys):
        rc = main(["bfs", "--file", self._messy_file(tmp_path),
                   "--source", "0", "--max-edges", "1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "more than 1 edges" in err
        assert len(err.strip().splitlines()) == 1

    def test_strict_and_lenient_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bfs", "--dataset", "p2p", "--strict-io", "--lenient-io"]
            )


class TestProfile:
    EXAMPLE = "examples/roadnet.snap.txt"

    def test_adaptive_profile_writes_manifest(self, tmp_path, capsys):
        out = tmp_path / "manifest.json"
        rc = main(["profile", self.EXAMPLE, "--out", str(out)])
        assert rc == 0
        assert out.exists()
        from repro.obs import RunManifest

        manifest = RunManifest.read(out)
        stdout = capsys.readouterr().out
        # The printed table is read back from the manifest; spot-check
        # that the headline numbers really appear in the output.
        assert str(manifest.result["iterations"]) in stdout
        assert str(manifest.result["reached"]) in stdout
        assert manifest.graph["digest"][:16] in stdout
        assert manifest.mode == "adaptive"
        assert manifest.metrics["frame.iterations"]["value"] == (
            manifest.result["iterations"]
        )
        assert "verified" in stdout

    def test_trace_contains_decision_track(self, tmp_path):
        import json

        out = tmp_path / "manifest.json"
        trace = tmp_path / "trace.json"
        rc = main(["profile", self.EXAMPLE, "--out", str(out),
                   "--trace", str(trace)])
        assert rc == 0
        with open(trace) as fh:
            doc = json.load(fh)
        from repro.obs.trace import TID_DECISIONS, TID_SPANS

        tids = {e.get("tid") for e in doc["traceEvents"]}
        assert TID_DECISIONS in tids
        assert TID_SPANS in tids

    def test_requires_exactly_one_input(self, tmp_path, capsys):
        assert main(["profile"]) == 2
        err = capsys.readouterr().err
        assert "graph file or --dataset" in err
        assert main(["profile", self.EXAMPLE, "--dataset", "p2p"]) == 2

    def test_dataset_input(self, tmp_path, capsys):
        out = tmp_path / "manifest.json"
        rc = main(["profile", "--dataset", "p2p", "--scale", "0.05",
                   "--out", str(out)])
        assert rc == 0
        assert out.exists()

    def test_resilient_mode(self, tmp_path, capsys):
        out = tmp_path / "manifest.json"
        rc = main(["profile", self.EXAMPLE, "--mode", "resilient",
                   "--out", str(out)])
        assert rc == 0
        from repro.obs import RunManifest

        manifest = RunManifest.read(out)
        assert manifest.mode == "resilient"
        assert manifest.reliability is not None
        assert manifest.reliability["attempts"] >= 1
        assert "served by" in capsys.readouterr().out

    def test_static_mode(self, tmp_path, capsys):
        out = tmp_path / "manifest.json"
        rc = main(["profile", self.EXAMPLE, "--mode", "U_B_QU",
                   "--out", str(out)])
        assert rc == 0
        from repro.obs import RunManifest

        assert RunManifest.read(out).mode == "U_B_QU"

    def test_sssp_profile(self, tmp_path):
        out = tmp_path / "manifest.json"
        rc = main(["profile", "--dataset", "p2p", "--scale", "0.05",
                   "--algorithm", "sssp", "--out", str(out)])
        assert rc == 0
        from repro.obs import RunManifest

        assert RunManifest.read(out).algorithm == "sssp"

    def test_help_matches_docs(self, capsys, monkeypatch):
        """The --help text pasted into docs/observability.md is current."""
        import os
        import re

        monkeypatch.setenv("COLUMNS", "80")
        with pytest.raises(SystemExit) as exc:
            main(["profile", "--help"])
        assert exc.value.code == 0
        help_text = capsys.readouterr().out.strip()

        doc_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "docs", "observability.md",
        )
        with open(doc_path, encoding="utf-8") as fh:
            doc = fh.read()
        match = re.search(r"```text\n(usage: repro profile.*?)```", doc, re.S)
        assert match, "docs/observability.md lost its pasted --help block"
        assert match.group(1).strip() == help_text


class TestFitPolicy:
    @pytest.fixture(scope="class")
    def manifests(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("corpus")
        paths = []
        for key, seed in (("citeseer", 1), ("p2p", 2)):
            path = root / f"{key}.json"
            rc = main(["profile", "--dataset", key, "--scale", "0.05",
                       "--seed", str(seed), "--algorithm", "sssp",
                       "--out", str(path)])
            assert rc == 0
            paths.append(str(path))
        return paths

    def test_fit_policy_writes_artifact(self, manifests, tmp_path, capsys):
        out = tmp_path / "policy.json"
        rc = main(["fit-policy", *manifests, "--out", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "training samples" in stdout
        assert f"[policy written to {out}]" in stdout
        from repro.core import load_policy

        artifact = load_policy(out)
        assert artifact.digest[:16] in stdout
        assert len(artifact.training["manifests"]) == 2

    def test_fit_policy_missing_manifest_exit_2(self, tmp_path, capsys):
        rc = main(["fit-policy", str(tmp_path / "absent.json"),
                   "--out", str(tmp_path / "p.json")])
        assert rc == 2
        assert "absent.json" in capsys.readouterr().err

    def test_run_with_learned_policy(self, manifests, tmp_path, capsys):
        out = tmp_path / "policy.json"
        assert main(["fit-policy", *manifests, "--out", str(out)]) == 0
        capsys.readouterr()
        rc = main(["run", "--algorithm", "sssp", "--dataset", "citeseer",
                   "--scale", "0.05", "--policy", f"learned:{out}"])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "(learned)" in stdout
        assert "policy digest:" in stdout
        assert "MISMATCH" not in stdout

    def test_profile_with_learned_policy(self, manifests, tmp_path):
        policy = tmp_path / "policy.json"
        assert main(["fit-policy", *manifests, "--out", str(policy)]) == 0
        out = tmp_path / "manifest.json"
        rc = main(["profile", "--dataset", "citeseer", "--scale", "0.05",
                   "--algorithm", "sssp", "--policy", f"learned:{policy}",
                   "--out", str(out)])
        assert rc == 0
        from repro.core import load_policy
        from repro.obs import RunManifest

        manifest = RunManifest.read(out)
        assert manifest.mode == "learned"
        assert manifest.policy["digest"] == load_policy(policy).digest

    def test_policy_requires_adaptive_mode(self, tmp_path, capsys):
        rc = main(["run", "--algorithm", "sssp", "--dataset", "p2p",
                   "--scale", "0.05", "--mode", "U_B_QU",
                   "--policy", "learned:whatever.json"])
        assert rc == 2
        assert "adaptive" in capsys.readouterr().err

    def test_bad_policy_spec_exit_2(self, capsys):
        rc = main(["run", "--algorithm", "sssp", "--dataset", "p2p",
                   "--scale", "0.05", "--policy", "oracle"])
        assert rc == 2
        assert "unknown policy spec" in capsys.readouterr().err


class TestBatchCommand:
    def _graph_file(self, tmp_path):
        g = attach_uniform_weights(erdos_renyi_graph(60, 300, seed=1), seed=2)
        path = tmp_path / "little.gr"
        write_dimacs(g, path)
        return str(path)

    def _queries_file(self, tmp_path, lines):
        path = tmp_path / "queries.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_batch_answers_and_writes_manifest(self, tmp_path, capsys):
        import json

        manifest_path = tmp_path / "batch.json"
        rc = main(
            ["batch", "--file", self._graph_file(tmp_path),
             "--queries", self._queries_file(tmp_path, [
                 '{"source": 0}',
                 '{"algorithm": "sssp", "source": 5}',
                 '{"algorithm": "sssp", "source": 9, "mode": "O_T_QU"}',
             ]),
             "--manifest", str(manifest_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sha256:" in out
        assert "batched" in out and "fallback" in out
        doc = json.loads(manifest_path.read_text())
        assert doc["algorithm"] == "batch"
        assert doc["result"]["ok"] == 3

    def test_failing_query_isolated_and_exits_1(self, tmp_path, capsys):
        rc = main(
            ["batch", "--file", self._graph_file(tmp_path),
             "--queries", self._queries_file(tmp_path, [
                 '{"source": 0}',
                 '{"source": 5000}',
             ])]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "error:" in out
        assert "1 / 2" in out  # the good query still answered

    def test_bad_query_file_exits_2(self, tmp_path, capsys):
        rc = main(
            ["batch", "--file", self._graph_file(tmp_path),
             "--queries", self._queries_file(tmp_path, ["not json"])]
        )
        assert rc == 2
        assert ":1:" in capsys.readouterr().err

    def test_source_out_of_range_exits_2(self, tmp_path, capsys):
        rc = main(["bfs", "--file", self._graph_file(tmp_path),
                   "--source", "99"])
        assert rc == 2
        assert "out of range" in capsys.readouterr().err

    def test_serve_round_trip(self, tmp_path, capsys, monkeypatch):
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                '{"source": 0}\n'
                "not json\n"
                '{"algorithm": "sssp", "source": 3}\n'
            ),
        )
        rc = main(["serve", "--file", self._graph_file(tmp_path),
                   "--batch-size", "2"])
        assert rc == 0
        captured = capsys.readouterr()
        answers = [json.loads(line) for line in captured.out.splitlines()
                   if line.startswith("{")]
        by_line = {doc["line"]: doc for doc in answers}
        assert by_line[1]["ok"] and by_line[1]["values_sha256"]
        assert not by_line[2]["ok"] and "error" in by_line[2]
        assert by_line[3]["ok"] and by_line[3]["algorithm"] == "sssp"
        # The malformed line is answered with an error object but only
        # real queries count as served.
        assert "served 2 queries" in captured.err

    def test_serve_interrupt_flushes_and_exits_130(self, tmp_path, capsys,
                                                   monkeypatch):
        import json

        class InterruptedStdin:
            """Two good queries, then the operator hits Ctrl-C."""

            def __init__(self):
                self.lines = [
                    '{"algorithm": "bfs", "source": 0}\n',
                    '{"algorithm": "bfs", "source": 5}\n',
                ]

            def __iter__(self):
                return self

            def __next__(self):
                if self.lines:
                    return self.lines.pop(0)
                raise KeyboardInterrupt

        monkeypatch.setattr("sys.stdin", InterruptedStdin())
        rc = main(["serve", "--file", self._graph_file(tmp_path),
                   "--batch-size", "8"])
        assert rc == 130
        captured = capsys.readouterr()
        # Pending queries are flushed before exiting, not dropped.
        answers = [json.loads(line) for line in captured.out.splitlines()
                   if line.strip()]
        assert sorted(a["line"] for a in answers) == [1, 2]
        assert all(a["ok"] for a in answers)
        assert "interrupted" in captured.err
        assert "served 2 queries" in captured.err

    def test_serve_manifest_and_slo_summary(self, tmp_path, capsys,
                                            monkeypatch):
        import io
        import json

        from repro.obs import RunManifest

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"algorithm": "bfs", "source": 2}\n'),
        )
        out = tmp_path / "serve.json"
        rc = main(["serve", "--file", self._graph_file(tmp_path),
                   "--manifest", str(out)])
        assert rc == 0
        manifest = RunManifest.read(out)
        assert manifest.algorithm == "serve"
        assert manifest.result["answered"] == 1
        assert "slo:" in capsys.readouterr().err

    def test_serve_deadline_zero_rejected(self, tmp_path, capsys,
                                          monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        rc = main(["serve", "--file", self._graph_file(tmp_path),
                   "--deadline-s", "0"])
        assert rc == 2
