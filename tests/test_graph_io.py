"""Tests for repro.graph.io (DIMACS / SNAP / Matrix Market)."""

import gzip

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import attach_uniform_weights, erdos_renyi_graph
from repro.graph.io import (
    load_graph,
    read_dimacs,
    read_matrix_market,
    read_metis,
    read_snap_edgelist,
    write_dimacs,
    write_matrix_market,
    write_snap_edgelist,
)


@pytest.fixture
def weighted_graph():
    return attach_uniform_weights(erdos_renyi_graph(40, 150, seed=3), seed=4)


class TestDimacs:
    def test_roundtrip(self, weighted_graph, tmp_path):
        path = tmp_path / "g.gr"
        write_dimacs(weighted_graph, path)
        back = read_dimacs(path)
        assert back.num_nodes == weighted_graph.num_nodes
        assert back.num_edges == weighted_graph.num_edges
        assert np.allclose(back.weights, weighted_graph.weights)

    def test_parse_reference_format(self, tmp_path):
        path = tmp_path / "ref.gr"
        path.write_text("c comment\np sp 3 2\na 1 2 7\na 2 3 4\n")
        g = read_dimacs(path)
        assert g.num_nodes == 3
        assert g.neighbors(0).tolist() == [1]
        assert g.edge_weights_of(0).tolist() == [7.0]

    def test_unweighted_arcs_default_one(self, tmp_path):
        path = tmp_path / "u.gr"
        path.write_text("p sp 2 1\na 1 2\n")
        assert read_dimacs(path).edge_weights_of(0).tolist() == [1.0]

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("a 1 2 3\n")
        with pytest.raises(GraphFormatError):
            read_dimacs(path)

    def test_arc_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 5\na 1 2 3\n")
        with pytest.raises(GraphFormatError, match="declares"):
            read_dimacs(path)

    def test_node_id_out_of_range(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\na 1 9 3\n")
        with pytest.raises(GraphFormatError, match="out of range"):
            read_dimacs(path)

    def test_gzip_support(self, weighted_graph, tmp_path):
        path = tmp_path / "g.gr.gz"
        write_dimacs(weighted_graph, path)
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("c")
        assert read_dimacs(path).num_edges == weighted_graph.num_edges


class TestSnap:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi_graph(30, 100, seed=5)
        path = tmp_path / "g.txt"
        write_snap_edgelist(g, path)
        back = read_snap_edgelist(path, num_nodes=30)
        assert back == g

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# Directed graph\n# Nodes: 3\n0\t1\n1\t2\n")
        g = read_snap_edgelist(path)
        assert g.num_edges == 2

    def test_bad_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_snap_edgelist(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_snap_edgelist(path)


class TestMatrixMarket:
    def test_roundtrip(self, weighted_graph, tmp_path):
        path = tmp_path / "g.mtx"
        write_matrix_market(weighted_graph, path)
        back = read_matrix_market(path)
        assert back.num_edges == weighted_graph.num_edges
        assert np.allclose(back.weights, weighted_graph.weights)

    def test_pattern_matrix(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n")
        g = read_matrix_market(path)
        assert g.num_edges == 2
        assert not g.has_weights

    def test_symmetric_matrix(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 2 1.5\n2 3 2.5\n"
        )
        g = read_matrix_market(path)
        assert g.num_edges == 4

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n1 1 0\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_entry_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)


class TestMetis:
    def test_parse_reference_format(self, tmp_path):
        # The 7-node example from the METIS manual (unweighted).
        path = tmp_path / "g.graph"
        path.write_text(
            "7 11\n5 3 2\n1 3 4\n5 4 2 1\n2 3 6 7\n1 3 6\n5 4 7\n6 4\n"
        )
        g = read_metis(path)
        assert g.num_nodes == 7
        assert g.num_edges == 22  # 11 undirected edges -> 22 arcs
        assert sorted(g.neighbors(0).tolist()) == [1, 2, 4]

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("% a comment\n2 1\n2\n1\n")
        assert read_metis(path).num_edges == 2

    def test_edge_weights(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 001\n2 7\n1 7\n")
        g = read_metis(path)
        assert g.has_weights
        assert g.edge_weights_of(0).tolist() == [7.0]

    def test_roundtrip(self, tmp_path):
        from repro.graph.generators import watts_strogatz_graph
        from repro.graph.io import write_metis

        g = watts_strogatz_graph(50, k=4, rewire_prob=0.1, seed=6)
        path = tmp_path / "ws.graph"
        write_metis(g, path)
        assert read_metis(path) == g

    def test_weighted_roundtrip(self, tmp_path):
        from repro.graph.generators import attach_uniform_weights, chain_graph
        from repro.graph.io import write_metis

        # Symmetric integer weights survive the roundtrip.
        g = chain_graph(10).with_weights([3.0] * 18)
        path = tmp_path / "c.graph"
        write_metis(g, path)
        back = read_metis(path)
        assert np.allclose(back.weights, g.weights)

    def test_write_rejects_directed(self, tmp_path, tiny_graph):
        from repro.graph.io import write_metis

        with pytest.raises(GraphFormatError, match="undirected"):
            write_metis(tiny_graph, tmp_path / "d.graph")

    def test_vertex_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 1\n2\n1\n")  # header says 3 vertices, 2 lines
        with pytest.raises(GraphFormatError, match="vertices"):
            read_metis(path)

    def test_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 1\n5\n1\n")
        with pytest.raises(GraphFormatError, match="out of range"):
            read_metis(path)

    def test_unsupported_vertex_weights(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 1 011\n1 2\n1 1\n")
        with pytest.raises(GraphFormatError, match="unsupported"):
            read_metis(path)

    def test_load_graph_dispatch(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1\n2\n1\n")
        assert load_graph(path).num_nodes == 2


class TestLoadGraph:
    def test_dispatch_by_extension(self, weighted_graph, tmp_path):
        gr = tmp_path / "a.gr"
        write_dimacs(weighted_graph, gr)
        assert load_graph(gr).num_edges == weighted_graph.num_edges

        mtx = tmp_path / "a.mtx"
        write_matrix_market(weighted_graph, mtx)
        assert load_graph(mtx).num_edges == weighted_graph.num_edges

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(GraphFormatError, match="cannot infer"):
            load_graph(tmp_path / "graph.xyz")

    def test_name_from_stem(self, weighted_graph, tmp_path):
        path = tmp_path / "colorado.gr"
        write_dimacs(weighted_graph, path)
        assert load_graph(path).name == "colorado"
