"""Tests for repro.graph.datasets: the Table-1 analogues must reproduce
the published structure (scaled)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph.datasets import (
    DATASETS,
    dataset_keys,
    make_dataset,
    paper_table1_rows,
)
from repro.graph.properties import is_symmetric, pseudo_diameter


class TestRegistry:
    def test_six_datasets_in_order(self):
        assert dataset_keys() == ("co-road", "citeseer", "p2p", "amazon", "google", "sns")

    def test_unknown_key(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            make_dataset("facebook")

    def test_paper_rows_match_specs(self):
        rows = paper_table1_rows()
        assert len(rows) == 6
        for row, key in zip(rows, dataset_keys()):
            assert row[0] == key
            assert row[1] == DATASETS[key].paper_nodes


class TestScaling:
    def test_scale_controls_nodes(self):
        small = make_dataset("amazon", scale=0.01, seed=0)
        large = make_dataset("amazon", scale=0.05, seed=0)
        assert large.num_nodes > small.num_nodes
        assert small.num_nodes == pytest.approx(
            DATASETS["amazon"].paper_nodes * 0.01, rel=0.05
        )

    def test_min_nodes_floor(self):
        g = make_dataset("p2p", scale=1e-6, min_nodes=256, seed=0)
        assert g.num_nodes == 256

    def test_scale_out_of_range(self):
        with pytest.raises(ValueError):
            make_dataset("amazon", scale=1.5)

    def test_deterministic_per_seed(self):
        a = make_dataset("google", scale=0.01, seed=5)
        b = make_dataset("google", scale=0.01, seed=5)
        assert a == b

    def test_seeds_differ(self):
        a = make_dataset("google", scale=0.01, seed=5)
        b = make_dataset("google", scale=0.01, seed=6)
        assert a != b


class TestWeights:
    def test_weighted_flag(self):
        g = make_dataset("p2p", scale=0.1, weighted=True, seed=0)
        assert g.has_weights
        assert g.weights.min() >= 1.0
        assert g.weights.max() <= 100.0

    def test_weight_range(self):
        g = make_dataset("p2p", scale=0.1, weighted=True, weight_range=(5, 7), seed=0)
        assert g.weights.min() >= 5
        assert g.weights.max() <= 7

    def test_unweighted_default(self):
        assert not make_dataset("p2p", scale=0.1, seed=0).has_weights


@pytest.mark.parametrize("key", dataset_keys())
class TestStructureMatchesPaper:
    """Average outdegree within a factor-of-two band of Table 1 and the
    qualitative distribution shape of Figure 1."""

    def test_avg_outdegree_band(self, key):
        spec = DATASETS[key]
        g = make_dataset(key, scale=0.05, seed=1)
        ratio = g.avg_out_degree / spec.paper_avg_outdegree
        assert 0.5 < ratio < 2.0, f"{key}: avg {g.avg_out_degree:.2f}"

    def test_max_degree_not_tiny(self, key):
        spec = DATASETS[key]
        g = make_dataset(key, scale=0.05, seed=1)
        assert g.out_degrees.max() >= min(spec.paper_max_outdegree, g.num_nodes - 1) * 0.1


class TestDistributionShapes:
    def test_road_is_sparse_and_regular(self):
        g = make_dataset("co-road", scale=0.02, seed=1)
        deg = g.out_degrees
        assert deg.max() <= 10
        # Figure 1: most road nodes have outdegree 1-4.
        assert float(((deg >= 1) & (deg <= 4)).mean()) > 0.9

    def test_road_symmetric(self):
        g = make_dataset("co-road", scale=0.02, seed=1)
        assert is_symmetric(g)

    def test_citeseer_symmetric_heavy_tail(self):
        g = make_dataset("citeseer", scale=0.02, seed=1)
        assert is_symmetric(g)
        assert g.out_degrees.max() > 10 * g.avg_out_degree

    def test_amazon_modal_degree_ten(self):
        g = make_dataset("amazon", scale=0.02, seed=1)
        deg = g.out_degrees
        # Figure 1: ~70 % of nodes have outdegree 10.
        assert 0.55 < float((deg >= 9).mean()) < 0.9
        assert deg.max() <= 10

    def test_google_heavy_tail(self):
        g = make_dataset("google", scale=0.02, seed=1)
        assert g.out_degrees.max() > 20 * max(1.0, g.avg_out_degree / 3)

    def test_road_diameter_exceeds_social(self):
        road = make_dataset("co-road", scale=0.02, seed=1)
        sns = make_dataset("sns", scale=0.002, seed=1)
        assert pseudo_diameter(road, seed=0) > 5 * pseudo_diameter(sns, seed=0)
