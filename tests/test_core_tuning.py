"""Tests for repro.core.tuning (threshold derivation and sweeps)."""

import pytest

from repro.core.tuning import (
    derive_t1,
    derive_t2,
    measure_t2_crossover,
    sweep_t3,
    tune_t3,
    T3SweepPoint,
)
from repro.errors import TuningError
from repro.graph.csr import CSRGraph
from repro.graph.generators import attach_uniform_weights, erdos_renyi_graph, power_law_graph
from repro.gpusim.device import GTX_580, TESLA_C2070


class TestDerivedThresholds:
    def test_t1_is_warp_size(self):
        assert derive_t1(TESLA_C2070) == 32.0

    def test_t2_paper_value(self):
        # "192 * 14 = 2,688 nodes" (Section VII.B).
        assert derive_t2(TESLA_C2070) == 2688

    def test_t2_other_device(self):
        assert derive_t2(GTX_580) == 3072


class TestT2Crossover:
    def test_crossover_in_paper_band(self):
        """B_QU wins small working sets; T_QU catches up in the low
        thousands ("~3000", Section VII.B)."""
        g = erdos_renyi_graph(100_000, 450_000, seed=2)
        crossover, rows = measure_t2_crossover(g, seed=0)
        assert 512 <= crossover <= 16_384
        # The measured rows must actually show B winning in the band just
        # below the crossover (far below it, everything is launch-overhead
        # noise and the two are within a microsecond of each other).
        below = [r for r in rows if crossover // 16 <= r[0] < crossover // 2]
        assert below and all(b <= t for _, t, b in below)

    def test_rows_cover_sizes(self):
        g = erdos_renyi_graph(5_000, 20_000, seed=3)
        _, rows = measure_t2_crossover(g, sizes=[64, 256, 1024], seed=0)
        assert [r[0] for r in rows] == [64, 256, 1024]

    def test_tiny_graph_rejected(self):
        with pytest.raises(TuningError):
            measure_t2_crossover(CSRGraph.empty(1))


class TestT3Sweep:
    @pytest.fixture(scope="class")
    def graph(self):
        return attach_uniform_weights(
            power_law_graph(20_000, alpha=1.9, max_degree=150, seed=4), seed=5
        )

    def test_sweep_points(self, graph):
        points = sweep_t3(graph, 0, "sssp", fractions=[0.01, 0.05, 0.10])
        assert [p.t3_fraction for p in points] == [0.01, 0.05, 0.10]
        assert all(p.seconds > 0 for p in points)

    def test_bfs_sweep(self, graph):
        points = sweep_t3(graph, 0, "bfs", fractions=[0.02, 0.08])
        assert len(points) == 2

    def test_tune_picks_minimum(self):
        points = [
            T3SweepPoint(0.01, 5.0, 0),
            T3SweepPoint(0.05, 2.0, 1),
            T3SweepPoint(0.10, 3.0, 1),
        ]
        assert tune_t3(points) == 0.05

    def test_tune_empty_rejected(self):
        with pytest.raises(TuningError):
            tune_t3([])
