"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 10**9, size=8)
        b = make_rng(2).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        rng = make_rng(ss)
        assert isinstance(rng, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert len(spawn_rngs(0, 0)) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(123, 2)
        assert not np.array_equal(
            a.integers(0, 10**9, size=16), b.integers(0, 10**9, size=16)
        )

    def test_deterministic_from_seed(self):
        a1, a2 = spawn_rngs(9, 2)
        b1, b2 = spawn_rngs(9, 2)
        assert np.array_equal(a1.integers(0, 100, 5), b1.integers(0, 100, 5))
        assert np.array_equal(a2.integers(0, 100, 5), b2.integers(0, 100, 5))

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_rngs(gen, 3)
        assert len(children) == 3
