"""Tests for the Chrome-trace exporter."""

import json

import pytest

from repro.gpusim.traceexport import (
    export_chrome_trace,
    iteration_start_times,
    timeline_to_trace_events,
)
from repro.kernels import run_bfs
from repro.graph.generators import balanced_tree


@pytest.fixture(scope="module")
def traversal():
    return run_bfs(balanced_tree(3, 4), 0, "U_B_QU")


class TestTraceEvents:
    def test_metadata_rows(self, traversal):
        events = timeline_to_trace_events(traversal.timeline)
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 3

    def test_one_duration_event_per_kernel(self, traversal):
        events = timeline_to_trace_events(traversal.timeline)
        kernels = [e for e in events if e["ph"] == "X" and e["tid"] == 1]
        assert len(kernels) == traversal.timeline.num_launches

    def test_transfer_track(self, traversal):
        events = timeline_to_trace_events(traversal.timeline)
        transfers = [e for e in events if e["ph"] == "X" and e["tid"] == 2]
        assert len(transfers) == len(traversal.timeline.transfers)

    def test_events_non_overlapping_in_time(self, traversal):
        events = [
            e
            for e in timeline_to_trace_events(traversal.timeline)
            if e["ph"] == "X" and e["tid"] == 1
        ]
        for a, b in zip(events, events[1:]):
            assert b["ts"] >= a["ts"] + a["dur"] - 1e-9

    def test_total_duration_matches_timeline(self, traversal):
        events = [
            e for e in timeline_to_trace_events(traversal.timeline) if e["ph"] == "X"
        ]
        total_us = sum(e["dur"] for e in events)
        expected = (
            traversal.timeline.gpu_seconds + traversal.timeline.transfer_seconds
        ) * 1e6
        assert total_us == pytest.approx(expected, rel=1e-9)

    def test_iteration_markers(self, traversal):
        events = timeline_to_trace_events(traversal.timeline)
        markers = [e for e in events if e["ph"] == "i"]
        assert len(markers) == traversal.num_iterations

    def test_iteration_markers_have_global_scope(self, traversal):
        # The trace-event spec requires instant events to carry a scope;
        # iteration boundaries span the whole timeline, so "g" (global),
        # which Perfetto renders as a full-height line.
        events = timeline_to_trace_events(traversal.timeline)
        for marker in (e for e in events if e["ph"] == "i"):
            assert marker["s"] == "g"

    def test_iteration_start_times_match_markers(self, traversal):
        # The helper and the exporter must agree on the layout, or
        # decision/fault markers in the combined trace drift off the
        # kernels they annotate.
        starts = iteration_start_times(traversal.timeline)
        assert sorted(starts) == list(range(traversal.num_iterations))
        events = timeline_to_trace_events(traversal.timeline)
        markers = [e for e in events if e["ph"] == "i"]
        for iteration, marker in enumerate(markers):
            assert marker["ts"] == pytest.approx(starts[iteration] * 1e6)
        # Monotonically increasing along the simulated axis.
        ordered = [starts[i] for i in sorted(starts)]
        assert ordered == sorted(ordered)

    def test_kernel_args(self, traversal):
        events = timeline_to_trace_events(traversal.timeline)
        kernel = next(e for e in events if e["ph"] == "X" and e["tid"] == 1)
        for key in ("variant", "blocks", "occupancy", "simt_efficiency"):
            assert key in kernel["args"]


class TestExportFile:
    def test_writes_valid_json(self, traversal, tmp_path):
        path = tmp_path / "trace.json"
        out = export_chrome_trace(traversal.timeline, path)
        assert out == str(path)
        with open(path) as fh:
            doc = json.load(fh)
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) > 0
