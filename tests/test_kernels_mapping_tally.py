"""Tests for repro.kernels.mapping: the tally builders encode the paper's
performance mechanisms, so each mechanism gets a directed test."""

import numpy as np
import pytest

from repro.gpusim.device import TESLA_C2070
from repro.gpusim.kernel import CostModel
from repro.kernels import costs
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Mapping, WorksetRepr


def make_shape(num_nodes=10_000, active=None, degrees=None, **kwargs):
    if active is None:
        active = np.arange(0, 6400, 2, dtype=np.int64)
    if degrees is None:
        degrees = np.full(active.size, 8, dtype=np.int64)
    defaults = dict(
        name="comp",
        num_nodes=num_nodes,
        active_ids=active,
        degrees=degrees,
        edge_cost=costs.C_EDGE,
        improved=int(degrees.sum() // 2),
        updated_count=max(1, active.size // 2),
    )
    defaults.update(kwargs)
    return ComputationShape(**defaults)


class TestThreadMapping:
    def test_bitmap_launches_all_nodes(self):
        shape = make_shape()
        tally = computation_tally(shape, Mapping.THREAD, WorksetRepr.BITMAP, 192, TESLA_C2070)
        assert tally.launch.total_threads >= shape.num_nodes

    def test_queue_launches_workset_only(self):
        shape = make_shape()
        tally = computation_tally(shape, Mapping.THREAD, WorksetRepr.QUEUE, 192, TESLA_C2070)
        assert tally.launch.total_threads < shape.num_nodes
        assert tally.launch.total_threads >= shape.active_ids.size

    def test_divergence_penalty(self):
        """A warp pays the max of its lanes: one hub node inflates cost."""
        active = np.arange(3200, dtype=np.int64)
        uniform = make_shape(active=active, degrees=np.full(3200, 8), improved=0, updated_count=1)
        skewed_deg = np.full(3200, 8)
        skewed_deg[::32] = 8 * 32  # one heavy lane per warp, same total edges...
        # keep totals comparable by zeroing others in those warps
        skewed = make_shape(active=active, degrees=skewed_deg, improved=0, updated_count=1)
        t_uniform = computation_tally(uniform, Mapping.THREAD, WorksetRepr.QUEUE, 192, TESLA_C2070)
        t_skewed = computation_tally(skewed, Mapping.THREAD, WorksetRepr.QUEUE, 192, TESLA_C2070)
        assert t_skewed.issue_cycles > 2 * t_uniform.issue_cycles
        assert t_skewed.simt_efficiency < t_uniform.simt_efficiency

    def test_block_mapping_immune_to_skew(self):
        """Block mapping parallelizes the hub, so skew barely moves it."""
        active = np.arange(3200, dtype=np.int64)
        uniform = make_shape(active=active, degrees=np.full(3200, 64), improved=0, updated_count=1)
        skewed_deg = np.full(3200, 64)
        skewed_deg[0] = 64 * 32
        skewed = make_shape(active=active, degrees=skewed_deg, improved=0, updated_count=1)
        t_uniform = computation_tally(uniform, Mapping.BLOCK, WorksetRepr.QUEUE, 64, TESLA_C2070)
        t_skewed = computation_tally(skewed, Mapping.BLOCK, WorksetRepr.QUEUE, 64, TESLA_C2070)
        assert t_skewed.issue_cycles < 1.2 * t_uniform.issue_cycles

    def test_empty_workset_bitmap(self):
        shape = make_shape(active=np.empty(0, dtype=np.int64), degrees=np.empty(0, dtype=np.int64),
                           improved=0, updated_count=0)
        tally = computation_tally(shape, Mapping.THREAD, WorksetRepr.BITMAP, 192, TESLA_C2070)
        assert tally.active_threads == 0
        assert tally.issue_cycles > 0  # the scan itself still costs


class TestBlockMapping:
    def test_bitmap_launches_block_per_node(self):
        shape = make_shape()
        tally = computation_tally(shape, Mapping.BLOCK, WorksetRepr.BITMAP, 64, TESLA_C2070)
        assert tally.launch.grid_blocks == shape.num_nodes

    def test_queue_launches_block_per_element(self):
        shape = make_shape()
        tally = computation_tally(shape, Mapping.BLOCK, WorksetRepr.QUEUE, 64, TESLA_C2070)
        assert tally.launch.grid_blocks == shape.active_ids.size

    def test_subwarp_degree_wastes_rounds(self):
        """Degree-4 nodes still pay a whole block round (idle cores)."""
        active = np.arange(1000, dtype=np.int64)
        deg4 = make_shape(active=active, degrees=np.full(1000, 4), improved=0, updated_count=1)
        deg32 = make_shape(active=active, degrees=np.full(1000, 32), improved=0, updated_count=1)
        t4 = computation_tally(deg4, Mapping.BLOCK, WorksetRepr.QUEUE, 32, TESLA_C2070)
        t32 = computation_tally(deg32, Mapping.BLOCK, WorksetRepr.QUEUE, 32, TESLA_C2070)
        # 8x fewer edges but (nearly) the same issue cost.
        assert t4.issue_cycles == pytest.approx(t32.issue_cycles, rel=0.01)
        assert t4.simt_efficiency < t32.simt_efficiency

    def test_rounds_scale_with_degree(self):
        active = np.arange(100, dtype=np.int64)
        small = make_shape(active=active, degrees=np.full(100, 64), improved=0, updated_count=1)
        large = make_shape(active=active, degrees=np.full(100, 640), improved=0, updated_count=1)
        t_small = computation_tally(small, Mapping.BLOCK, WorksetRepr.QUEUE, 64, TESLA_C2070)
        t_large = computation_tally(large, Mapping.BLOCK, WorksetRepr.QUEUE, 64, TESLA_C2070)
        assert t_large.issue_cycles > 5 * t_small.issue_cycles


class TestMemoryAccounting:
    def test_bitmap_block_reads_scattered(self):
        """B_BM: each block reads its own flag byte -> ~n transactions."""
        shape = make_shape()
        bm_block = computation_tally(shape, Mapping.BLOCK, WorksetRepr.BITMAP, 64, TESLA_C2070)
        bm_thread = computation_tally(shape, Mapping.THREAD, WorksetRepr.BITMAP, 192, TESLA_C2070)
        assert bm_block.mem_transactions > bm_thread.mem_transactions

    def test_block_adjacency_coalesces(self):
        """Cooperative neighbor reads stream; thread-mapped ones do not."""
        active = np.arange(0, 512, dtype=np.int64)
        shape = make_shape(active=active, degrees=np.full(512, 256), improved=0, updated_count=1)
        t = computation_tally(shape, Mapping.THREAD, WorksetRepr.QUEUE, 192, TESLA_C2070)
        b = computation_tally(shape, Mapping.BLOCK, WorksetRepr.QUEUE, 256, TESLA_C2070)
        assert b.mem_transactions < t.mem_transactions

    def test_weight_stream_adds_traffic(self):
        base = make_shape(weight_streams=0)
        weighted = make_shape(weight_streams=1)
        t0 = computation_tally(base, Mapping.BLOCK, WorksetRepr.QUEUE, 64, TESLA_C2070)
        t1 = computation_tally(weighted, Mapping.BLOCK, WorksetRepr.QUEUE, 64, TESLA_C2070)
        assert t1.mem_transactions > t0.mem_transactions


class TestGuardCost:
    def test_ordered_guard_increases_issue(self):
        plain = make_shape(guard_cost=0.0)
        guarded = make_shape(guard_cost=costs.C_PAIR_CHECK)
        t0 = computation_tally(plain, Mapping.THREAD, WorksetRepr.QUEUE, 192, TESLA_C2070)
        t1 = computation_tally(guarded, Mapping.THREAD, WorksetRepr.QUEUE, 192, TESLA_C2070)
        assert t1.issue_cycles > t0.issue_cycles


class TestEndToEndPricing:
    def test_all_combinations_priceable(self):
        model = CostModel(TESLA_C2070)
        shape = make_shape()
        for mapping in Mapping:
            for workset in WorksetRepr:
                tally = computation_tally(shape, mapping, workset, 64, TESLA_C2070)
                assert model.price(tally).seconds > 0
