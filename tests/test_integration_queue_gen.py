"""Integration: queue-generation schemes across algorithms and the
adaptive runtime — every scheme must preserve results while reordering
only the cost structure."""

import numpy as np
import pytest

from repro import RuntimeConfig, adaptive_bfs, adaptive_sssp
from repro.graph.generators import attach_uniform_weights, power_law_graph
from repro.kernels import run_bfs, run_cc, run_pagerank, run_sssp
from repro.kernels.workset import QUEUE_GEN_SCHEMES


@pytest.fixture(scope="module")
def workload():
    g = power_law_graph(8_000, alpha=1.9, max_degree=150, seed=27)
    w = attach_uniform_weights(g, seed=28)
    src = int(np.argmax(g.out_degrees))
    return g, w, src


@pytest.mark.parametrize("scheme", QUEUE_GEN_SCHEMES)
class TestSchemesPreserveResults:
    def test_bfs(self, scheme, workload):
        g, _, src = workload
        base = run_bfs(g, src, "U_T_QU")
        other = run_bfs(g, src, "U_T_QU", queue_gen=scheme)
        assert np.array_equal(base.values, other.values)
        assert base.num_iterations == other.num_iterations

    def test_sssp(self, scheme, workload):
        _, w, src = workload
        base = run_sssp(w, src, "U_B_QU")
        other = run_sssp(w, src, "U_B_QU", queue_gen=scheme)
        assert np.allclose(base.values, other.values)

    def test_cc(self, scheme, workload):
        g, _, _ = workload
        base = run_cc(g, "U_B_QU")
        other = run_cc(g, "U_B_QU", queue_gen=scheme)
        assert np.array_equal(base.values, other.values)

    def test_pagerank(self, scheme, workload):
        g, _, _ = workload
        base = run_pagerank(g, "U_T_QU", tolerance=1e-6)
        other = run_pagerank(g, "U_T_QU", tolerance=1e-6, queue_gen=scheme)
        assert np.array_equal(base.values, other.values)

    def test_adaptive(self, scheme, workload):
        g, w, src = workload
        cfg = RuntimeConfig(queue_gen=scheme)
        assert np.array_equal(
            adaptive_bfs(g, src, config=cfg).values,
            adaptive_bfs(g, src).values,
        )
        assert np.allclose(
            adaptive_sssp(w, src, config=cfg).values,
            adaptive_sssp(w, src).values,
        )


class TestSchemeCostOrdering:
    def test_bitmap_variants_unaffected(self, workload):
        """Schemes only touch the queue path; bitmap runs are identical
        down to the simulated time."""
        g, _, src = workload
        times = {
            scheme: run_bfs(g, src, "U_T_BM", queue_gen=scheme).total_seconds
            for scheme in QUEUE_GEN_SCHEMES
        }
        assert len(set(times.values())) == 1

    def test_queue_costs_differ(self, workload):
        g, _, src = workload
        times = {
            scheme: run_bfs(g, src, "U_T_QU", queue_gen=scheme).total_seconds
            for scheme in QUEUE_GEN_SCHEMES
        }
        assert len(set(times.values())) == 3
        assert times["hierarchical"] <= times["atomic"]
