"""Tests for repro.core.decision and repro.core.config: the Figure-11
decision space."""

import pytest

from repro.core.config import RuntimeConfig
from repro.core.decision import DecisionMaker, Thresholds
from repro.errors import RuntimeConfigError
from repro.gpusim.device import GTX_580, TESLA_C2070


@pytest.fixture
def maker():
    # T1=32, T2=2688, T3=10000 (a 167k-node graph at 6 %)
    return DecisionMaker(Thresholds(t1=32.0, t2=2688, t3=10_000))


class TestDecisionRegions:
    def test_tiny_workset_always_b_qu(self, maker):
        # Left of T2: B_QU regardless of degree (Figure 11).
        assert maker.decide(10, 2.5).code == "U_B_QU"
        assert maker.decide(2687, 500.0).code == "U_B_QU"

    def test_mid_workset_low_degree(self, maker):
        assert maker.decide(5000, 8.0).code == "U_T_QU"

    def test_mid_workset_high_degree(self, maker):
        assert maker.decide(5000, 73.9).code == "U_B_QU"

    def test_large_workset_low_degree(self, maker):
        assert maker.decide(50_000, 8.0).code == "U_T_BM"

    def test_large_workset_high_degree(self, maker):
        assert maker.decide(50_000, 73.9).code == "U_B_BM"

    def test_boundaries_inclusive_exclusive(self, maker):
        # ws == T2 leaves the small-ws region; ws == T3 enters bitmap.
        assert maker.decide(2688, 8.0).code == "U_T_QU"
        assert maker.decide(10_000, 8.0).code == "U_T_BM"
        assert maker.decide(9_999, 8.0).code == "U_T_QU"

    def test_t1_boundary(self, maker):
        assert maker.decide(5000, 31.9).code == "U_T_QU"
        assert maker.decide(5000, 32.0).code == "U_B_QU"

    def test_only_unordered(self, maker):
        for ws in (1, 5000, 50_000):
            for deg in (2.0, 100.0):
                assert maker.decide(ws, deg).code.startswith("U_")

    def test_region_labels(self, maker):
        assert maker.region(10, 5.0) == "small-ws"
        assert maker.region(5000, 5.0) == "mid-ws/low-degree"
        assert maker.region(50_000, 100.0) == "large-ws/high-degree"


class TestThresholds:
    def test_rejects_bad_t1(self):
        with pytest.raises(RuntimeConfigError):
            Thresholds(t1=0.0, t2=1, t3=1)

    def test_rejects_negative(self):
        with pytest.raises(RuntimeConfigError):
            Thresholds(t1=32.0, t2=-1, t3=1)


class TestRuntimeConfig:
    def test_t1_defaults_to_warp_size(self):
        assert RuntimeConfig().resolve_t1(TESLA_C2070) == 32.0

    def test_t2_defaults_to_tpb_times_sms(self):
        # 192 threads x 14 SMs = 2688 (Section VII.B).
        assert RuntimeConfig().resolve_t2(TESLA_C2070) == 2688

    def test_t2_scales_with_device(self):
        assert RuntimeConfig().resolve_t2(GTX_580) == 192 * 16

    def test_t3_fraction_resolution(self):
        assert RuntimeConfig(t3_fraction=0.06).resolve_t3(435_666) == 26_140

    def test_explicit_overrides(self):
        cfg = RuntimeConfig(t1=16.0, t2=999)
        assert cfg.resolve_t1(TESLA_C2070) == 16.0
        assert cfg.resolve_t2(TESLA_C2070) == 999

    def test_rejects_bad_values(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(t3_fraction=0.0)
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(sampling_interval=0)
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(switch_mode="magic")
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(t1=-2.0)

    def test_with_overrides(self):
        cfg = RuntimeConfig().with_overrides(sampling_interval=4)
        assert cfg.sampling_interval == 4


class TestDecisionInputAudit:
    """Regression: NaN or negative decision inputs used to fall silently
    through every threshold comparison into an arbitrary region."""

    def test_rejects_nan_degree(self, maker):
        with pytest.raises(RuntimeConfigError, match="finite"):
            maker.decide(100, float("nan"))

    def test_rejects_infinite_degree(self, maker):
        with pytest.raises(RuntimeConfigError, match="finite"):
            maker.decide(100, float("inf"))

    def test_rejects_negative_degree(self, maker):
        with pytest.raises(RuntimeConfigError):
            maker.decide(100, -1.0)

    def test_rejects_negative_workset(self, maker):
        with pytest.raises(RuntimeConfigError, match="workset_size"):
            maker.decide(-1, 5.0)

    def test_region_audits_too(self, maker):
        with pytest.raises(RuntimeConfigError):
            maker.region(10, float("nan"))

    def test_empty_workset_is_valid_input(self, maker):
        # An empty working set is a legal (terminal) state, not an error.
        assert maker.decide(0, 0.0).code == "U_B_QU"

    def test_all_zero_outdegree_workset_pins_thread_side(self, maker):
        # Zero average outdegree sits below any sensible T1: the working
        # set maps to threads in both the mid and large regions.
        assert maker.decide(5000, 0.0).code == "U_T_QU"
        assert maker.decide(50_000, 0.0).code == "U_T_BM"


class TestThresholdOrdering:
    """Regression: tiny graphs resolved the T3 fraction below T2,
    inverting the Figure-11 mid/large regions."""

    def test_resolved_clamps_t3_up_to_t2(self):
        t = Thresholds(t1=32.0, t2=2688, t3=100).resolved()
        assert t.t3 == t.t2 == 2688

    def test_resolved_is_identity_when_ordered(self):
        t = Thresholds(t1=32.0, t2=100, t3=200)
        assert t.resolved() is t

    def test_rejects_nan_t1(self):
        with pytest.raises(RuntimeConfigError):
            Thresholds(t1=float("nan"), t2=1, t3=1)

    @pytest.mark.parametrize("num_nodes", [1, 2, 31, 200])
    def test_resolve_thresholds_on_tiny_graphs(self, num_nodes):
        # T3 = 6 % of a tiny node count resolves far below T2 = 2688;
        # the resolved thresholds must still be ordered and valid.
        t = RuntimeConfig().resolve_thresholds(TESLA_C2070, num_nodes)
        assert t.t3 >= t.t2
        assert 0 < t.t1_low <= t.t1

    def test_clamped_thresholds_decide_consistently(self):
        t = RuntimeConfig().resolve_thresholds(TESLA_C2070, 31)
        maker = DecisionMaker(t)
        # At the clamped boundary a working set is unambiguously in the
        # bitmap region, never "both mid and large" as pre-clamp.
        assert maker.decide(int(t.t2), 5.0).code.endswith("BM")
        assert maker.decide(int(t.t2) - 1, 5.0).code == "U_B_QU"
