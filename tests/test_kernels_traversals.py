"""Tests for repro.kernels.frame / bfs / sssp: every variant must compute
correct answers on every graph shape, and the traversal records must be
internally consistent."""

import numpy as np
import pytest

from repro.cpu import cpu_bfs, cpu_dijkstra
from repro.errors import KernelError
from repro.graph.generators import (
    attach_uniform_weights,
    balanced_tree,
    chain_graph,
    erdos_renyi_graph,
    power_law_graph,
    star_graph,
)
from repro.kernels import (
    StaticPolicy,
    all_variants,
    run_bfs,
    run_bfs_all_variants,
    run_sssp,
    run_sssp_all_variants,
    traverse_bfs,
)
from repro.kernels.variants import Variant

GRAPHS = {
    "chain": lambda: chain_graph(40),
    "star": lambda: star_graph(100),
    "tree": lambda: balanced_tree(3, 4),
    "random": lambda: erdos_renyi_graph(150, 700, seed=1),
    "skewed": lambda: power_law_graph(200, alpha=1.8, max_degree=60, seed=2),
}


@pytest.mark.parametrize("graph_name", GRAPHS)
@pytest.mark.parametrize("variant", [v.code for v in all_variants()])
class TestAllVariantsCorrect:
    def test_bfs_levels_match_cpu(self, graph_name, variant):
        g = GRAPHS[graph_name]()
        r = run_bfs(g, 0, variant)
        oracle = cpu_bfs(g, 0)
        assert np.array_equal(r.values, oracle.levels)

    def test_sssp_distances_match_dijkstra(self, graph_name, variant):
        g = attach_uniform_weights(GRAPHS[graph_name](), seed=3)
        r = run_sssp(g, 0, variant)
        oracle = cpu_dijkstra(g, 0, method="heap")
        assert np.allclose(r.values, oracle.distances)


class TestTraversalResult:
    def test_iteration_records_consistent(self):
        g = chain_graph(20)
        r = run_bfs(g, 0, "U_T_QU")
        # One level per iteration, plus the final sweep that discovers no
        # updates and empties the working set.
        assert r.num_iterations == 20
        for rec in r.iterations:
            assert rec.workset_size >= 1
            assert rec.seconds > 0
        assert r.reached == 20

    def test_workset_curve_matches_records(self):
        g = balanced_tree(2, 5)
        r = run_bfs(g, 0, "U_B_QU")
        curve = r.workset_curve()
        assert curve.tolist() == [rec.workset_size for rec in r.iterations]
        # A tree frontier doubles every level from the root.
        assert curve[0] == 1 and curve[1] == 2 and curve[2] == 4

    def test_variants_used_static(self):
        g = chain_graph(10)
        r = run_bfs(g, 0, "U_B_QU")
        assert r.variants_used() == {"U_B_QU": r.num_iterations}

    def test_gpu_time_positive_and_total_larger(self):
        g = star_graph(50)
        r = run_bfs(g, 0, "U_T_BM")
        assert 0 < r.gpu_seconds < r.total_seconds  # transfers add time

    def test_nodes_per_second(self):
        g = chain_graph(30)
        r = run_bfs(g, 0, "U_T_BM")
        assert r.nodes_per_second() == pytest.approx(r.reached / r.total_seconds)

    def test_timeline_has_two_kernels_per_iteration(self):
        g = chain_graph(8)
        r = run_bfs(g, 0, "U_T_BM")
        # computation + workset_gen each iteration (no findmin for BFS)
        assert r.timeline.num_launches == 2 * r.num_iterations

    def test_ordered_sssp_has_findmin_kernels(self):
        g = attach_uniform_weights(chain_graph(6), seed=0)
        r = run_sssp(g, 0, "O_T_QU")
        assert "findmin" in r.timeline.seconds_by_kernel()

    def test_source_out_of_range(self):
        with pytest.raises(Exception):
            run_bfs(chain_graph(5), 17)

    def test_sssp_requires_weights(self):
        with pytest.raises(KernelError, match="weights"):
            run_sssp(chain_graph(5), 0, "U_T_BM")

    def test_max_iterations_enforced(self):
        g = chain_graph(50)
        with pytest.raises(KernelError, match="exceeded"):
            run_bfs(g, 0, "U_T_BM", max_iterations=3)


class TestRunners:
    def test_all_variants_runner_keys(self):
        g = chain_graph(10)
        results = run_bfs_all_variants(g, 0)
        assert list(results) == [v.code for v in all_variants()]

    def test_subset_of_variants(self):
        g = attach_uniform_weights(chain_graph(10), seed=0)
        results = run_sssp_all_variants(g, 0, variants=["U_T_BM", "U_B_QU"])
        assert list(results) == ["U_T_BM", "U_B_QU"]

    def test_variant_object_accepted(self):
        g = chain_graph(10)
        r = run_bfs(g, 0, Variant.parse("U_B_BM"))
        assert r.policy_name == "U_B_BM"


class TestIsolatedSource:
    def test_bfs_from_sink(self, tiny_graph):
        # Node 4 has no outgoing edges: single-iteration traversal? No --
        # the working set starts at {4}, one step, no updates.
        r = run_bfs(tiny_graph, 4, "U_T_BM")
        assert r.reached == 1
        assert r.num_iterations == 1

    def test_sssp_from_sink(self, tiny_weighted):
        r = run_sssp(tiny_weighted, 4, "U_B_QU")
        assert r.reached == 1


class TestPolicyProtocol:
    def test_alternating_policy_still_correct(self):
        """Any switching sequence must preserve results (shared update
        vector invariant)."""

        class Alternating(StaticPolicy):
            def __init__(self):
                super().__init__(Variant.parse("U_T_BM"))
                self.name = "alternating"
                self.codes = ["U_T_BM", "U_B_QU", "U_T_QU", "U_B_BM"]

            def choose(self, iteration, ws):
                return Variant.parse(self.codes[iteration % 4])

        g = erdos_renyi_graph(120, 600, seed=4)
        r = traverse_bfs(g, 0, Alternating())
        oracle = cpu_bfs(g, 0)
        assert np.array_equal(r.values, oracle.levels)
        assert len(r.variants_used()) > 1
