"""Property-based tests: on arbitrary random graphs, every GPU variant
and the adaptive runtime must agree with the serial CPU oracles, and the
cost model must produce sane numbers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import adaptive_bfs, adaptive_sssp
from repro.cpu import cpu_bfs, cpu_dijkstra
from repro.graph.builder import from_edge_list
from repro.kernels import all_variants, run_bfs, run_sssp


@st.composite
def graphs_with_source(draw, max_nodes=25, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=20), min_size=m, max_size=m
        )
    )
    source = draw(st.integers(0, n - 1))
    g = from_edge_list(
        src, dst, [float(w) for w in weights], num_nodes=n, dedupe=True
    )
    return g, source


class TestVariantAgreement:
    @given(graphs_with_source())
    @settings(max_examples=25, deadline=None)
    def test_all_bfs_variants_agree_with_cpu(self, gs):
        g, source = gs
        oracle = cpu_bfs(g, source).levels
        for variant in all_variants():
            result = run_bfs(g, source, variant)
            assert np.array_equal(result.values, oracle), variant.code

    @given(graphs_with_source())
    @settings(max_examples=15, deadline=None)
    def test_all_sssp_variants_agree_with_dijkstra(self, gs):
        g, source = gs
        oracle = cpu_dijkstra(g, source, method="heap").distances
        for variant in all_variants():
            result = run_sssp(g, source, variant)
            assert np.allclose(result.values, oracle), variant.code

    @given(graphs_with_source())
    @settings(max_examples=20, deadline=None)
    def test_adaptive_agrees_with_cpu(self, gs):
        g, source = gs
        assert np.array_equal(adaptive_bfs(g, source).values, cpu_bfs(g, source).levels)
        assert np.allclose(
            adaptive_sssp(g, source).values,
            cpu_dijkstra(g, source, method="heap").distances,
        )


class TestTraversalInvariants:
    @given(graphs_with_source())
    @settings(max_examples=25, deadline=None)
    def test_costs_positive_and_finite(self, gs):
        g, source = gs
        result = run_bfs(g, source, "U_B_QU")
        assert np.isfinite(result.total_seconds)
        assert result.total_seconds > 0
        assert result.gpu_seconds > 0
        for record in result.iterations:
            assert record.seconds > 0

    @given(graphs_with_source())
    @settings(max_examples=25, deadline=None)
    def test_workset_sizes_bounded_by_nodes(self, gs):
        g, source = gs
        result = run_bfs(g, source, "U_T_BM")
        for record in result.iterations:
            assert 1 <= record.workset_size <= g.num_nodes

    @given(graphs_with_source())
    @settings(max_examples=25, deadline=None)
    def test_bfs_reached_consistent(self, gs):
        g, source = gs
        result = run_bfs(g, source, "U_T_QU")
        assert result.reached == int((result.values >= 0).sum())
        assert result.reached >= 1  # the source itself

    @given(graphs_with_source())
    @settings(max_examples=10, deadline=None)
    def test_sssp_distances_respect_triangle(self, gs):
        """For every edge u->v: dist[v] <= dist[u] + w(u,v)."""
        g, source = gs
        result = run_sssp(g, source, "U_T_BM")
        dist = result.values
        src = np.repeat(np.arange(g.num_nodes), g.out_degrees)
        for u, v, w in zip(src, g.col_indices, g.weights):
            if np.isfinite(dist[u]):
                assert dist[v] <= dist[u] + w + 1e-6
