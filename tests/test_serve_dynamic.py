"""Dynamic serving: epoch-aware cache patches and mutation barriers.

Three layers under test.  :meth:`SessionCache.patch` must re-key a live
session in place — no eviction, no rebuild, post-mutation lookups hit
the same object — while stale artifacts (thresholds, profile, digest)
are all re-derived from the mutated graph: a mutated graph must never
be served with pre-mutation thresholds.  :class:`ServeLoop` applies
queued mutation batches only at super-iteration barriers, preserving
exactly-once and answering every post-barrier query on the new epoch
with SHA parity against a from-scratch run.  The chaos soak composes
both with fault injection.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.config import RuntimeConfig
from repro.core.runtime import adaptive_run
from repro.errors import RuntimeConfigError
from repro.graph.dynamic import DeltaOverlayGraph, EdgeBatch
from repro.graph.generators import attach_uniform_weights, erdos_renyi_graph
from repro.obs import Observer, observing
from repro.obs.manifest import graph_fingerprint
from repro.serve import BatchQuery, GraphSession, ServeLoop, SessionCache
from repro.serve.chaos import generate_mutations, run_chaos


def _sha(values) -> str:
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


def _mutated(graph, batch, mode=None):
    overlay = DeltaOverlayGraph(graph)
    delta = overlay.apply(batch, mode=mode)
    return overlay.materialize(name=graph.name), delta


# ----------------------------------------------------------------------
# Epoch-aware session cache invalidation
# ----------------------------------------------------------------------

class TestSessionPatch:
    def test_patch_rekeys_in_place_without_eviction(self, random_graph):
        cache = SessionCache(capacity=4)
        session = cache.get(random_graph)
        old_digest = session.digest
        mutated, _ = _mutated(random_graph, EdgeBatch.inserts([(0, 150)]))

        patched = cache.patch(session, mutated)
        assert patched is session  # same live object, not a rebuild
        assert cache.patches == 1 and cache.evictions == 0
        assert session.digest != old_digest
        assert session.digest == graph_fingerprint(mutated)["digest"]
        # Post-mutation lookups hit the patched entry...
        hits_before = cache.hits
        assert cache.get(mutated) is session
        assert cache.hits == hits_before + 1
        # ...and non-incremental consumers see the digest bump: the old
        # key no longer resolves (a fresh get under it would miss).
        assert old_digest not in cache.digests()

    def test_mutated_graph_never_reuses_stale_thresholds(self, random_graph):
        """Regression: T3 is resolved from num_nodes at session build;
        a grow mutation must re-resolve it, not serve the stale value."""
        config = RuntimeConfig(t2=4)  # keep T3 out of the T3>=T2 clamp
        cache = SessionCache(capacity=4)
        session = cache.get(random_graph, config=config)
        stale = session.thresholds
        assert stale.t3 == config.resolve_thresholds(
            session.device, random_graph.num_nodes
        ).t3

        grow = EdgeBatch.from_docs(
            enumerate(
                [
                    {"op": "grow", "nodes": 800},
                    {"op": "insert", "u": 900, "v": 0},
                ],
                start=1,
            )
        )
        mutated, _ = _mutated(random_graph, grow)
        cache.patch(session, mutated)
        fresh = config.resolve_thresholds(session.device, mutated.num_nodes)
        assert session.thresholds.t3 == fresh.t3
        assert session.thresholds.t3 != stale.t3
        # The profile the decision maker reads is post-mutation too.
        assert session.profile.num_nodes == mutated.num_nodes
        assert session.profile.num_edges == mutated.num_edges

    def test_patch_requires_cached_session(self, random_graph):
        cache = SessionCache(capacity=2)
        foreign = GraphSession(random_graph)
        mutated, _ = _mutated(random_graph, EdgeBatch.inserts([(1, 2)]))
        with pytest.raises(RuntimeConfigError, match="does not hold"):
            cache.patch(foreign, mutated)

    def test_patch_supersedes_collision_under_new_digest(self, random_graph):
        cache = SessionCache(capacity=4)
        session = cache.get(random_graph)
        mutated, _ = _mutated(random_graph, EdgeBatch.inserts([(0, 150)]))
        rival = cache.get(mutated)  # someone already ingested the target
        assert rival is not session
        cache.patch(session, mutated)
        assert cache.get(mutated) is session
        assert cache.evictions == 1  # the rival, counted honestly

    def test_patch_observed(self, random_graph):
        observer = Observer()
        with observing(observer):
            cache = SessionCache(capacity=2)
            session = cache.get(random_graph)
            mutated, _ = _mutated(random_graph, EdgeBatch.inserts([(3, 4)]))
            cache.patch(session, mutated)
        snap = observer.metrics.snapshot()
        assert snap["serve.cache.patches"]["value"] == 1


# ----------------------------------------------------------------------
# Serve-loop mutation barriers
# ----------------------------------------------------------------------

class TestServeLoopMutations:
    def test_barrier_applies_between_frames_with_parity(self, random_graph):
        cache = SessionCache(capacity=4)
        session = cache.get(random_graph)
        loop = ServeLoop(session, max_batch_rows=4, cache=cache)

        loop.submit(BatchQuery("bfs", 0), line=1)
        loop.pump()  # frame mid-flight
        loop.submit_mutation(EdgeBatch.inserts([(0, 150), (150, 3)]))
        loop.submit(BatchQuery("bfs", 3), line=2)
        assert loop.busy
        loop.drain()

        responses = {r["line"]: r for r in loop.take_responses()}
        assert len(responses) == 2 and all(r["ok"] for r in responses.values())
        # Query 1 rode the pre-mutation frame, query 2 the new epoch.
        assert responses[1]["graph_epoch"] == 0
        assert responses[2]["graph_epoch"] == 1
        pre = adaptive_run(random_graph, "bfs", 0)
        assert responses[1]["values_sha256"] == _sha(pre.values)
        post = adaptive_run(loop.session.graph, "bfs", 3)
        assert responses[2]["values_sha256"] == _sha(post.values)

        assert loop.report.mutations_applied == 1
        assert loop.graph_epoch == 1
        assert cache.patches == 1 and cache.evictions == 0
        (event,) = loop.report.mutation_events
        assert event["ok"] and event["edges_inserted"] == 2
        assert event["new_digest"] == session.digest
        assert event["compaction_seconds"] > 0

    def test_mutation_burns_simulated_time(self, random_graph):
        session = GraphSession(random_graph)
        loop = ServeLoop(session, cache=None)
        loop.submit(BatchQuery("bfs", 0), line=1)
        loop.drain()
        before = loop.sim_now
        loop.submit_mutation(EdgeBatch.inserts([(5, 9)], path="<t>"))
        loop.pump()
        assert loop.sim_now > before  # compaction priced into the clock
        loop.submit(BatchQuery("bfs", 0), line=2)
        loop.drain()
        assert loop.sim_now >= before

    def test_invalid_batch_is_event_not_crash(self, random_graph):
        session = GraphSession(random_graph)
        loop = ServeLoop(session, mutation_mode="strict")
        old_digest = session.digest
        loop.submit_mutation(EdgeBatch.deletes([(0, 199)]))  # missing edge
        loop.submit(BatchQuery("bfs", 0), line=1)
        loop.drain()
        (doc,) = loop.take_responses()
        assert doc["ok"] and doc["graph_epoch"] == 0
        assert loop.report.mutations_rejected == 1
        assert loop.report.mutations_applied == 0
        assert session.digest == old_digest  # nothing half-applied
        (event,) = loop.report.mutation_events
        assert not event["ok"] and "missing edge" in event["error"]

    def test_coalesced_batches_advance_epoch_per_batch(self, random_graph):
        session = GraphSession(random_graph)
        loop = ServeLoop(session, mutation_mode="lenient")
        loop.submit_mutation(EdgeBatch.inserts([(0, 9)]))
        loop.submit_mutation(EdgeBatch.inserts([(9, 0)]))
        loop.pump()
        assert loop.graph_epoch == 2
        assert loop.report.mutations_applied == 2
        (event,) = loop.report.mutation_events  # one shared barrier
        assert event["batches"] == 2

    def test_report_round_trips_mutation_fields(self, random_graph):
        session = GraphSession(random_graph)
        loop = ServeLoop(session, mutation_mode="lenient")
        loop.submit_mutation(EdgeBatch.inserts([(0, 9)]))
        loop.submit(BatchQuery("bfs", 0), line=1)
        loop.drain()
        doc = loop.finalize().result_dict()
        assert doc["mutations_applied"] == 1
        assert doc["graph_epoch"] == 1
        assert doc["mutation_events"][0]["ok"]
        json.dumps(doc)  # manifest-safe


# ----------------------------------------------------------------------
# Chaos: mutations under fault injection
# ----------------------------------------------------------------------

class TestDynamicChaos:
    def test_generate_mutations_is_seeded_and_epoch_consistent(self):
        graph = attach_uniform_weights(erdos_renyi_graph(80, 400, seed=3), seed=4)
        batches, epochs = generate_mutations(graph, 3, ops_per_batch=10, seed=9)
        again, _ = generate_mutations(graph, 3, ops_per_batch=10, seed=9)
        assert len(batches) == 3 and len(epochs) == 4
        assert [len(b) for b in batches] == [len(b) for b in again]
        # Epoch k is the graph after the first k batches, replayable
        # through a fresh overlay.
        overlay = DeltaOverlayGraph(graph)
        for k, batch in enumerate(batches, start=1):
            overlay.apply(batch, mode="lenient")
            assert (
                graph_fingerprint(overlay.materialize(name=graph.name))["digest"]
                == graph_fingerprint(epochs[k])["digest"]
            )

    def test_mutating_soak_passes_exactly_once_and_parity(self):
        report = run_chaos(
            num_queries=60, num_nodes=200, seed=3, mutation_batches=3
        )
        assert report.passed, report.violations
        assert report.mutation_batches == 3
        assert report.serve.graph_epoch == 3
        assert report.mutation_digest_mismatches == 0
        assert report.duplicate_responses == 0
        assert report.missing_responses == 0
        assert report.sha_mismatches == 0
        # Epoch-aware invalidation, not eviction: one patch per barrier
        # (a barrier may coalesce several batches), never an eviction.
        assert 1 <= report.cache_patches <= 3
        assert report.cache_evictions == 0
        doc = report.result_dict()
        assert doc["mutation_batches"] == 3 and doc["cache_evictions"] == 0

    def test_mutating_soak_is_deterministic(self):
        first = run_chaos(num_queries=30, num_nodes=150, seed=8,
                          mutation_batches=2)
        second = run_chaos(num_queries=30, num_nodes=150, seed=8,
                           mutation_batches=2)
        a, b = first.result_dict(), second.result_dict()
        a.pop("latency_wall_s"), b.pop("latency_wall_s")
        assert a == b
