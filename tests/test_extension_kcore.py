"""Tests for the k-core decomposition extension."""

import numpy as np
import pytest

from repro import adaptive_kcore, run_kcore
from repro.cpu import cpu_kcore
from repro.errors import KernelError
from repro.graph.builder import to_networkx
from repro.graph.generators import (
    balanced_tree,
    chain_graph,
    complete_graph,
    erdos_renyi_graph,
    power_law_graph,
    star_graph,
)
from repro.graph.transforms import symmetrize
from repro.kernels import unordered_variants


def nx_coreness(graph):
    import networkx as nx

    core = nx.core_number(to_networkx(graph).to_undirected())
    return np.array([core[i] for i in range(graph.num_nodes)])


@pytest.fixture(scope="module")
def social():
    return symmetrize(power_law_graph(600, alpha=1.9, max_degree=80, seed=15))


class TestCpuKCore:
    def test_matches_networkx(self, social):
        assert np.array_equal(cpu_kcore(social).coreness, nx_coreness(social))

    def test_chain_all_one(self):
        r = cpu_kcore(chain_graph(30))
        assert np.all(r.coreness == 1)
        assert r.max_core == 1

    def test_complete_graph(self):
        r = cpu_kcore(complete_graph(10))
        assert np.all(r.coreness == 9)

    def test_star_leaves_one_hub_one(self):
        r = cpu_kcore(star_graph(50))
        assert np.all(r.coreness == 1)

    def test_tree_all_one(self):
        r = cpu_kcore(balanced_tree(3, 4))
        assert r.max_core == 1

    def test_directed_input_symmetrized(self, tiny_graph):
        r = cpu_kcore(tiny_graph)
        assert np.array_equal(r.coreness, nx_coreness(symmetrize(tiny_graph)))

    def test_counts_and_price(self, social):
        r = cpu_kcore(social)
        assert r.nodes_peeled == social.num_nodes
        assert r.edges_scanned > 0
        assert r.seconds > 0


class TestGpuKCore:
    @pytest.mark.parametrize("code", [v.code for v in unordered_variants()])
    def test_all_variants_match_networkx(self, code, social):
        r = run_kcore(social, code)
        assert np.array_equal(r.values, nx_coreness(social))

    def test_directed_input(self, tiny_graph):
        r = run_kcore(tiny_graph, "U_T_BM")
        assert np.array_equal(r.values, nx_coreness(symmetrize(tiny_graph)))

    def test_sawtooth_workset(self, social):
        """Each k-stage opens with a burst then drains."""
        r = run_kcore(social, "U_B_QU")
        curve = r.workset_curve()
        assert curve.size >= cpu_kcore(social).max_core
        # At least one stage cascades (a peel triggers further peels).
        assert r.num_iterations > cpu_kcore(social).max_core

    def test_max_iterations(self, social):
        with pytest.raises(KernelError, match="exceeded"):
            run_kcore(social, "U_T_BM", max_iterations=1)

    def test_algorithm_tag(self):
        r = run_kcore(chain_graph(5), "U_T_QU")
        assert r.algorithm == "kcore"


class TestAdaptiveKCore:
    def test_correct(self, social):
        r = adaptive_kcore(social)
        assert np.array_equal(r.values, nx_coreness(social))

    def test_matches_static_time_envelope(self, social):
        ad = adaptive_kcore(social)
        statics = [
            run_kcore(social, v).total_seconds for v in unordered_variants()
        ]
        assert ad.total_seconds <= 1.25 * min(statics)

    def test_switch_intensive_on_large_graph(self):
        g = symmetrize(erdos_renyi_graph(40_000, 200_000, seed=16))
        r = adaptive_kcore(g)
        assert np.array_equal(r.values, nx_coreness(g))
        # The sawtooth trajectory repeatedly crosses decision regions.
        assert r.num_switches >= 2


class TestObservedKcore:
    def test_run_kcore_accepts_observe(self):
        from repro.obs import Observer

        g = erdos_renyi_graph(800, 4000, seed=5)
        observer = Observer()
        result = run_kcore(g, observe=observer)
        snap = observer.metrics.snapshot()
        assert snap["frame.iterations"]["value"] == result.num_iterations
        assert snap["gpusim.kernel_launches"]["value"] > 0

    def test_observation_does_not_change_result(self):
        from repro.obs import Observer

        g = erdos_renyi_graph(800, 4000, seed=5)
        plain = run_kcore(g)
        observed = run_kcore(g, observe=Observer())
        assert np.array_equal(plain.values, observed.values)
        assert plain.total_seconds == observed.total_seconds
