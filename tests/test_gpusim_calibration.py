"""Tests for the cost-model calibration utility."""

import pytest

from repro.errors import TuningError
from repro.gpusim.calibration import calibrate_atomic_cost, measured_t3_crossover
from repro.gpusim.kernel import CostParams
from repro.graph.generators import power_law_graph


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(100_000, alpha=2.1, max_degree=300, seed=30)


class TestMeasuredCrossover:
    def test_default_params_low_percent(self, graph):
        frac = measured_t3_crossover(graph)
        assert 0.001 < frac < 0.10

    def test_monotone_in_atomic_cost(self, graph):
        cheap = measured_t3_crossover(
            graph, params=CostParams(atomic_cycles_per_op=1.0)
        )
        dear = measured_t3_crossover(
            graph, params=CostParams(atomic_cycles_per_op=12.0)
        )
        assert dear <= cheap

    def test_deterministic(self, graph):
        assert measured_t3_crossover(graph, seed=1) == measured_t3_crossover(
            graph, seed=1
        )


class TestCalibrateAtomicCost:
    def test_hits_target(self, graph):
        target = 0.02
        params = calibrate_atomic_cost(graph, target)
        achieved = measured_t3_crossover(graph, params=params)
        assert achieved == pytest.approx(target, abs=0.005)

    def test_preserves_other_params(self, graph):
        base = CostParams(block_dispatch_cycles=77.0)
        params = calibrate_atomic_cost(graph, 0.02, base_params=base)
        assert params.block_dispatch_cycles == 77.0

    def test_rejects_silly_target(self, graph):
        with pytest.raises(TuningError):
            calibrate_atomic_cost(graph, 0.9)

    def test_rejects_unreachable_target(self, graph):
        # A crossover at 40% of |V| would need absurdly cheap atomics.
        with pytest.raises(TuningError, match="outside achievable"):
            calibrate_atomic_cost(graph, 0.45)

    def test_rejects_bad_bounds(self, graph):
        with pytest.raises(TuningError):
            calibrate_atomic_cost(graph, 0.02, bounds=(5.0, 1.0))
