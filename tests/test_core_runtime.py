"""Tests for repro.core.runtime and repro.core.api (end-to-end adaptive
behaviour on small graphs)."""

import numpy as np
import pytest

from repro.core import Graph, RuntimeConfig, adaptive_bfs, adaptive_sssp, run_static
from repro.cpu import cpu_bfs, cpu_dijkstra
from repro.errors import GraphError, KernelError
from repro.graph.generators import (
    attach_uniform_weights,
    balanced_tree,
    chain_graph,
    erdos_renyi_graph,
    power_law_graph,
)


@pytest.fixture
def medium_graph():
    return erdos_renyi_graph(3000, 15_000, seed=5)


@pytest.fixture
def medium_weighted(medium_graph):
    return attach_uniform_weights(medium_graph, seed=6)


class TestAdaptiveBfs:
    def test_correct_levels(self, medium_graph):
        result = adaptive_bfs(medium_graph, 0)
        oracle = cpu_bfs(medium_graph, 0)
        assert np.array_equal(result.values, oracle.levels)

    def test_trace_populated(self, medium_graph):
        result = adaptive_bfs(medium_graph, 0)
        assert result.trace.num_decisions >= 1
        assert result.num_iterations >= 1
        assert result.total_seconds > 0

    def test_thresholds_resolved(self, medium_graph):
        result = adaptive_bfs(medium_graph, 0)
        assert result.thresholds.t1 == 32.0
        assert result.thresholds.t2 == 2688

    def test_starts_with_b_qu(self, medium_graph):
        # The working set starts at one node: the small-ws region.
        result = adaptive_bfs(medium_graph, 0)
        first = result.traversal.iterations[0]
        assert first.variant == "U_B_QU"

    def test_config_respected(self, medium_graph):
        cfg = RuntimeConfig(t2=0, t3_fraction=1.0)  # forces the queue band
        result = adaptive_bfs(medium_graph, 0, config=cfg)
        used = set(result.variants_used())
        assert used <= {"U_T_QU", "U_B_QU"}


class TestAdaptiveSssp:
    def test_correct_distances(self, medium_weighted):
        result = adaptive_sssp(medium_weighted, 0)
        oracle = cpu_dijkstra(medium_weighted, 0)
        assert np.allclose(result.values, oracle.distances)

    def test_switches_on_ramping_workset(self):
        # A larger graph whose frontier ramps past the thresholds.
        g = attach_uniform_weights(
            power_law_graph(60_000, alpha=1.9, max_degree=300, seed=7), seed=8
        )
        result = adaptive_sssp(g, int(np.argmax(g.out_degrees)))
        assert result.num_switches >= 1
        assert len(result.variants_used()) >= 2

    def test_unordered_only(self, medium_weighted):
        result = adaptive_sssp(medium_weighted, 0)
        assert all(code.startswith("U_") for code in result.variants_used())


class TestRunStatic:
    def test_bfs_dispatch(self, medium_graph):
        r = run_static(medium_graph, 0, "bfs", "U_T_BM")
        assert np.array_equal(r.values, cpu_bfs(medium_graph, 0).levels)

    def test_sssp_dispatch(self, medium_weighted):
        r = run_static(medium_weighted, 0, "sssp", "U_B_QU")
        assert np.allclose(r.values, cpu_dijkstra(medium_weighted, 0).distances)

    def test_registry_dispatch(self, medium_graph):
        # Registered extension algorithms dispatch through run_static too.
        from repro.cpu import cpu_connected_components

        r = run_static(medium_graph, 0, "cc", "U_T_BM")
        assert np.array_equal(r.values, cpu_connected_components(medium_graph).labels)

    def test_unknown_algorithm(self, medium_graph):
        with pytest.raises(KernelError, match="unknown algorithm"):
            run_static(medium_graph, 0, "tricount", "U_T_BM")

    def test_variantless_algorithm_rejected(self, medium_graph):
        with pytest.raises(KernelError, match="static"):
            run_static(medium_graph, 0, "dobfs", "U_T_BM")


class TestGraphApi:
    def test_from_edges_and_bfs(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)], num_nodes=4)
        result = g.bfs(source=0)
        assert result.values.tolist() == [0, 1, 2, 3]

    def test_bfs_static_mode(self):
        g = Graph.from_edges([(0, 1), (1, 2)], num_nodes=3)
        result = g.bfs(source=0, mode="U_B_QU")
        assert result.policy_name == "U_B_QU"

    def test_sssp_requires_weights(self):
        g = Graph.from_edges([(0, 1)], num_nodes=2)
        with pytest.raises(GraphError, match="weights"):
            g.sssp(source=0)

    def test_with_random_weights(self):
        g = Graph.from_edges([(0, 1), (1, 2)], num_nodes=3).with_random_weights(seed=1)
        result = g.sssp(source=0)
        assert np.isfinite(result.values[2])

    def test_symmetric_construction(self):
        g = Graph.from_edges([(0, 1)], num_nodes=2, symmetric=True)
        assert g.num_edges == 2

    def test_properties(self):
        g = Graph.from_edges([(0, 1), (0, 2)], num_nodes=3)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.avg_out_degree == pytest.approx(2 / 3)

    def test_repr(self):
        g = Graph.from_edges([(0, 1)], num_nodes=2)
        assert "Graph(" in repr(g)


class TestAdaptiveVsStaticSanity:
    def test_adaptive_not_catastrophic(self, medium_weighted):
        """Adaptive must stay within 2x of the best unordered static (the
        paper's robustness claim, loosely checked at tiny scale)."""
        from repro.kernels import unordered_variants

        ad = adaptive_sssp(medium_weighted, 0)
        best = min(
            run_static(medium_weighted, 0, "sssp", v).total_seconds
            for v in unordered_variants()
        )
        assert ad.total_seconds <= 2.0 * best


class TestSourceValidation:
    """Regression: an out-of-range source used to surface as a raw
    IndexError (or a silent numpy wraparound for negatives) deep inside
    the kernels instead of one clear GraphError at the entry point."""

    def test_adaptive_rejects_out_of_range(self, medium_graph):
        with pytest.raises(GraphError, match="out of range"):
            adaptive_bfs(medium_graph, medium_graph.num_nodes)

    def test_adaptive_rejects_negative(self, medium_graph):
        with pytest.raises(GraphError, match="out of range"):
            adaptive_bfs(medium_graph, -1)

    def test_run_static_rejects_out_of_range(self, medium_graph):
        with pytest.raises(GraphError, match="out of range"):
            run_static(medium_graph, 10 ** 6, "bfs", "U_T_BM")

    def test_run_static_rejects_negative(self, medium_weighted):
        with pytest.raises(GraphError, match="out of range"):
            run_static(medium_weighted, -3, "sssp", "U_T_QU")
