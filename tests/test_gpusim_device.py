"""Tests for repro.gpusim.device."""

import pytest

from repro.errors import DeviceError
from repro.gpusim.device import (
    DeviceSpec,
    GTX_580,
    QUADRO_2000,
    TESLA_C2070,
    device_registry,
)


class TestPresets:
    def test_c2070_matches_paper(self):
        # Section VII: "an Nvidia Tesla C2070 GPU, which contains 14
        # 32-core SMs"; Fermi datasheet: 1.15 GHz, 144 GB/s.
        assert TESLA_C2070.num_sms == 14
        assert TESLA_C2070.cores_per_sm == 32
        assert TESLA_C2070.total_cores == 448
        assert TESLA_C2070.warp_size == 32
        assert TESLA_C2070.clock_ghz == pytest.approx(1.15)
        assert TESLA_C2070.mem_bandwidth_gbs == pytest.approx(144.0)

    def test_registry_contains_presets(self):
        reg = device_registry()
        assert reg["c2070"] is TESLA_C2070
        assert reg["gtx580"] is GTX_580
        assert reg["quadro2000"] is QUADRO_2000

    def test_gtx580_bigger(self):
        assert GTX_580.num_sms > TESLA_C2070.num_sms
        assert GTX_580.clock_ghz > TESLA_C2070.clock_ghz


class TestDerivedQuantities:
    def test_bytes_per_cycle(self):
        # 144 GB/s at 1.15 GHz ~ 125 bytes per core cycle.
        assert TESLA_C2070.bytes_per_cycle == pytest.approx(125.2, rel=0.01)

    def test_cycles_seconds_roundtrip(self):
        s = TESLA_C2070.cycles_to_seconds(1_150_000_000)
        assert s == pytest.approx(1.0)
        assert TESLA_C2070.seconds_to_cycles(s) == pytest.approx(1_150_000_000)

    def test_warps_per_block_limit(self):
        assert TESLA_C2070.warps_per_block_limit == 32


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(DeviceError):
            DeviceSpec(name="bad", num_sms=0, cores_per_sm=32)

    def test_rejects_negative_clock(self):
        with pytest.raises(DeviceError):
            DeviceSpec(name="bad", num_sms=1, cores_per_sm=32, clock_ghz=-1)

    def test_rejects_non_warp_multiple_block(self):
        with pytest.raises(DeviceError):
            DeviceSpec(name="bad", num_sms=1, cores_per_sm=32, max_threads_per_block=100)

    def test_with_overrides(self):
        d = TESLA_C2070.with_overrides(num_sms=7)
        assert d.num_sms == 7
        assert d.clock_ghz == TESLA_C2070.clock_ghz
        assert TESLA_C2070.num_sms == 14  # original untouched
