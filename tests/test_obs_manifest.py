"""Tests for run manifests and the combined Perfetto trace."""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdaptiveResult, RuntimeConfig, adaptive_bfs
from repro.graph.generators import balanced_tree, rmat_graph, road_network
from repro.gpusim.device import TESLA_C2070
from repro.kernels import run_bfs
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    Observer,
    RunManifest,
    build_manifest,
    combined_trace_events,
    export_combined_trace,
    graph_fingerprint,
)
from repro.obs.trace import TID_DECISIONS, TID_FAULTS, TID_SPANS


# ----------------------------------------------------------------------
# Strategies: JSON-shaped manifests
# ----------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
_json_dicts = st.dictionaries(st.text(min_size=1, max_size=12), _scalars,
                              max_size=4)

manifests = st.builds(
    RunManifest,
    schema_version=st.just(MANIFEST_SCHEMA_VERSION),
    algorithm=st.sampled_from(["bfs", "sssp", "bfs_ordered"]),
    mode=st.sampled_from(["adaptive", "resilient", "U_B_QU"]),
    source=st.integers(min_value=-1, max_value=10**6),
    graph=_json_dicts,
    device=_json_dicts,
    config=_json_dicts,
    result=_json_dicts,
    decisions=st.lists(_json_dicts, max_size=3),
    faults=st.lists(_json_dicts, max_size=3),
    metrics=_json_dicts,
    memory=st.one_of(st.none(), _json_dicts),
    spans=st.lists(_json_dicts, max_size=3),
    reliability=st.one_of(st.none(), _json_dicts),
)


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(manifests)
    def test_dict_round_trip_lossless(self, manifest):
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    @settings(max_examples=25, deadline=None)
    @given(manifests)
    def test_json_round_trip_lossless(self, manifest):
        assert RunManifest.from_json(manifest.to_json()) == manifest

    def test_write_read_round_trip(self, tmp_path):
        graph = balanced_tree(2, 8)
        result = adaptive_bfs(graph, 0)
        manifest = build_manifest(
            result, graph=graph, algorithm="bfs", mode="adaptive", source=0
        )
        path = tmp_path / "manifest.json"
        assert manifest.write(path) == str(path)
        assert RunManifest.read(path) == manifest
        # The file is plain, sorted, indented JSON.
        text = path.read_text()
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"

    def test_wrong_schema_version_rejected(self):
        doc = RunManifest(
            schema_version=MANIFEST_SCHEMA_VERSION, algorithm="bfs",
            mode="adaptive", source=0, graph={}, device={}, config={},
            result={},
        ).to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            RunManifest.from_dict(doc)

    def test_unknown_fields_rejected(self):
        doc = RunManifest(
            schema_version=MANIFEST_SCHEMA_VERSION, algorithm="bfs",
            mode="adaptive", source=0, graph={}, device={}, config={},
            result={},
        ).to_dict()
        doc["surprise"] = 1
        with pytest.raises(ValueError, match="unknown manifest fields"):
            RunManifest.from_dict(doc)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

class TestFingerprint:
    def test_shape_fields(self):
        graph = rmat_graph(7, seed=3)
        fp = graph_fingerprint(graph)
        assert fp["num_nodes"] == graph.num_nodes
        assert fp["num_edges"] == graph.num_edges
        assert fp["weighted"] is False
        assert len(fp["digest"]) == 32  # blake2b-16 hex

    def test_content_sensitive(self):
        a = graph_fingerprint(rmat_graph(7, seed=3))
        b = graph_fingerprint(rmat_graph(7, seed=4))
        assert a["digest"] != b["digest"]

    def test_deterministic(self):
        a = graph_fingerprint(road_network(100, seed=5))
        b = graph_fingerprint(road_network(100, seed=5))
        assert a == b

    def test_weights_change_digest(self):
        from repro.graph.generators import attach_uniform_weights

        graph = rmat_graph(7, seed=3)
        weighted = attach_uniform_weights(graph, seed=1)
        assert (
            graph_fingerprint(graph)["digest"]
            != graph_fingerprint(weighted)["digest"]
        )


# ----------------------------------------------------------------------
# build_manifest over the three result shapes
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def graph():
    return rmat_graph(8, seed=21)


class TestBuildManifest:
    def test_from_adaptive_result(self, graph):
        observer = Observer()
        result = adaptive_bfs(
            graph, 0, config=RuntimeConfig(), device=TESLA_C2070,
            observe=observer,
        )
        manifest = build_manifest(
            result, graph=graph, algorithm="bfs", mode="adaptive", source=0,
            device=TESLA_C2070, config=RuntimeConfig(), observer=observer,
        )
        assert manifest.result["iterations"] == result.num_iterations
        assert manifest.result["reached"] == result.traversal.reached
        assert len(manifest.decisions) == result.trace.num_decisions
        assert manifest.metrics["frame.iterations"]["value"] == result.num_iterations
        assert manifest.spans, "observer spans should be embedded"
        assert manifest.device["name"] == TESLA_C2070.name
        assert manifest.reliability is None

    def test_from_plain_traversal(self, graph):
        result = run_bfs(graph, 0, "U_B_QU")
        manifest = build_manifest(
            result, graph=graph, algorithm="bfs", mode="U_B_QU", source=0
        )
        assert manifest.result["kernel_launches"] == result.timeline.num_launches
        assert manifest.decisions == []
        assert manifest.metrics == {}

    def test_from_resilient_result(self, graph):
        from repro.reliability import FaultPlan, resilient_bfs

        observer = Observer()
        plan = FaultPlan(seed=3, launch_failure_rate=0.3, max_faults=2)
        result = resilient_bfs(graph, 0, plan=plan, observe=observer)
        manifest = build_manifest(
            result, graph=graph, algorithm="bfs", mode="resilient", source=0,
            observer=observer,
        )
        assert manifest.reliability is not None
        assert manifest.reliability["attempts"] == result.attempts
        assert len(manifest.faults) == result.num_faults
        assert manifest.metrics["guard.faults"]["value"] == result.num_faults

    def test_manifest_is_json_clean(self, graph):
        observer = Observer()
        result = adaptive_bfs(graph, 0, observe=observer)
        manifest = build_manifest(
            result, graph=graph, algorithm="bfs", mode="adaptive", source=0,
            observer=observer,
        )
        json.dumps(manifest.to_dict())  # must not raise


# ----------------------------------------------------------------------
# Combined trace: trace-event schema conformance
# ----------------------------------------------------------------------

_SCOPES = {"g", "p", "t"}


def _assert_valid_trace_events(events):
    for e in events:
        assert isinstance(e, dict)
        assert "ph" in e
        if e["ph"] == "X":
            for key in ("ts", "dur", "pid", "tid", "name"):
                assert key in e, f"X event missing {key}: {e}"
            assert e["dur"] >= 0
        elif e["ph"] == "i":
            assert e["s"] in _SCOPES, e
            for key in ("ts", "pid", "name"):
                assert key in e, f"instant event missing {key}: {e}"
        elif e["ph"] == "M":
            assert e["name"] in ("process_name", "thread_name", "thread_sort_index")
    json.dumps(events)  # serializable


class TestCombinedTrace:
    def test_all_tracks_present_and_valid(self, graph):
        observer = Observer()
        result = adaptive_bfs(graph, 0, observe=observer)
        events = combined_trace_events(
            result.traversal.timeline, trace=result.trace, observer=observer
        )
        _assert_valid_trace_events(events)
        tids = {e.get("tid") for e in events}
        assert {1, 2, TID_DECISIONS, TID_SPANS} <= tids
        decisions = [
            e for e in events
            if e.get("tid") == TID_DECISIONS and e["ph"] != "M"
        ]
        assert all(e["ph"] == "i" and e["s"] == "t" for e in decisions)
        assert len(decisions) == result.trace.num_decisions

    def test_fault_track_on_faulty_run(self, graph):
        from repro.reliability import FaultPlan, resilient_bfs

        observer = Observer()
        plan = FaultPlan(seed=3, launch_failure_rate=0.3, max_faults=2)
        result = resilient_bfs(graph, 0, plan=plan, observe=observer)
        events = combined_trace_events(
            result.result.traversal.timeline,
            trace=result.trace,
            observer=observer,
        )
        _assert_valid_trace_events(events)
        faults = [
            e for e in events if e.get("tid") == TID_FAULTS and e["ph"] != "M"
        ]
        assert len(faults) == result.num_faults
        assert all(e["ph"] == "i" and e["s"] == "g" for e in faults)

    def test_degrades_without_trace_or_observer(self, graph):
        result = run_bfs(graph, 0, "U_B_QU")
        events = combined_trace_events(result.timeline)
        _assert_valid_trace_events(events)
        tids = {e.get("tid") for e in events}
        assert TID_DECISIONS not in tids
        assert TID_SPANS not in tids

    def test_span_track_positions_on_sim_axis(self, graph):
        observer = Observer()
        result = adaptive_bfs(graph, 0, observe=observer)
        events = combined_trace_events(
            result.traversal.timeline, trace=result.trace, observer=observer
        )
        spans = [e for e in events if e.get("tid") == TID_SPANS and e["ph"] == "X"]
        assert spans
        end = (
            result.traversal.timeline.gpu_seconds
            + result.traversal.timeline.transfer_seconds
        ) * 1e6
        for e in spans:
            assert 0.0 <= e["ts"] <= end + 1e-6
            assert "wall_us" in e["args"]

    def test_export_writes_valid_doc(self, graph, tmp_path):
        observer = Observer()
        result = adaptive_bfs(graph, 0, observe=observer)
        path = tmp_path / "combined.json"
        out = export_combined_trace(
            result.traversal.timeline, path,
            trace=result.trace, observer=observer,
        )
        assert out == str(path)
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["displayTimeUnit"] == "ms"
        _assert_valid_trace_events(doc["traceEvents"])
