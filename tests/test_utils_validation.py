"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int("n", 3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 3.5)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("n", True)

    def test_numpy_integer_accepted(self):
        import numpy as np

        assert check_positive_int("n", np.int64(5)) == 5

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive_int("my_param", -1)


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int("n", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int("n", -1)


class TestCheckPositive:
    def test_accepts_float(self):
        assert check_positive("x", 0.5) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("x", "1")


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.01)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.1)


class TestCheckInRange:
    def test_open_ends(self):
        assert check_in_range("x", 5) == 5.0

    def test_low_bound(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.5, low=1.0)

    def test_high_bound(self):
        with pytest.raises(ValueError):
            check_in_range("x", 2.0, high=1.0)


class TestCheckFinite:
    def test_accepts_real_numbers(self):
        assert check_finite("w", 3) == 3.0
        assert check_finite("w", -2.5) == -2.5
        assert check_finite("w", 0.0) == 0.0

    @pytest.mark.parametrize("value", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, value):
        with pytest.raises(ValueError, match="must be finite"):
            check_finite("w", value)

    @pytest.mark.parametrize("value", ["1.0", None, True])
    def test_rejects_non_numbers(self, value):
        with pytest.raises(TypeError):
            check_finite("w", value)
