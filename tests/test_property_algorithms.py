"""Property-based tests on the algorithm extensions: invariants that
must hold on arbitrary random graphs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cpu import cpu_kcore, cpu_pagerank
from repro.graph.builder import from_edge_list
from repro.graph.transforms import symmetrize, weakly_connected_components
from repro.kernels import run_cc, run_kcore, run_pagerank


@st.composite
def random_graphs(draw, max_nodes=30, max_edges=90):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return from_edge_list(src, dst, num_nodes=n, dedupe=True, drop_self_loops=True)


class TestConnectedComponentsProperties:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_labels_constant_on_edges(self, g):
        """Fixpoint: both endpoints of every edge share a label."""
        labels = run_cc(g, "U_B_QU").values
        src = np.repeat(np.arange(g.num_nodes), g.out_degrees)
        for u, v in zip(src, g.col_indices):
            assert labels[u] == labels[v]

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_label_is_component_minimum(self, g):
        labels = run_cc(g, "U_T_QU").values
        oracle = weakly_connected_components(g)
        assert np.array_equal(labels, oracle)
        # Labels are self-consistent minima: label[label[v]] == label[v].
        assert np.array_equal(labels[labels], labels)


class TestPageRankProperties:
    @given(random_graphs(), st.floats(0.5, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_mass_bounded_by_one(self, g, damping):
        r = run_pagerank(g, "U_T_BM", damping=damping, tolerance=1e-8)
        total = float(r.values.sum())
        # Mass <= 1 (dangling absorption only loses mass) and above the
        # teleport floor.
        assert total <= 1.0 + 1e-9
        assert total >= (1.0 - damping) - 1e-9

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_ranks_positive_and_residuals_converged(self, g):
        tol = 1e-7
        r = run_pagerank(g, "U_B_QU", tolerance=tol)
        assert np.all(r.values > 0)  # everyone holds teleport mass
        cpu = cpu_pagerank(g, tolerance=tol, method="fast")
        assert np.abs(r.values - cpu.ranks).max() < 1e-12

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_variant_independence(self, g):
        a = run_pagerank(g, "U_T_BM", tolerance=1e-6).values
        b = run_pagerank(g, "U_B_QU", tolerance=1e-6).values
        assert np.array_equal(a, b)


class TestKCoreProperties:
    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_coreness_definition_holds(self, g):
        """Every node of coreness c has >= c neighbors with coreness >= c
        (in the symmetrized graph), and coreness <= degree."""
        sym = symmetrize(g)
        coreness = run_kcore(sym, "U_B_QU").values
        deg = sym.out_degrees
        assert np.all(coreness <= deg)
        for v in range(sym.num_nodes):
            c = coreness[v]
            if c == 0:
                continue
            neigh = sym.neighbors(v)
            assert int((coreness[neigh] >= c).sum()) >= c

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_cpu_gpu_agree(self, g):
        assert np.array_equal(run_kcore(g, "U_T_QU").values, cpu_kcore(g).coreness)
