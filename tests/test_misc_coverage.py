"""Targeted tests for smaller modules: findmin, the error hierarchy,
policy protocol defaults, and the queue-generation scheme registry."""

import numpy as np
import pytest

import repro.errors as errors
from repro.errors import ReproError, WorksetError
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.kernel import CostModel
from repro.kernels.findmin import findmin, findmin_tallies
from repro.kernels.frame import StaticPolicy, VariantPolicy
from repro.kernels.variants import Variant, WorksetRepr
from repro.kernels.workset import QUEUE_GEN_SCHEMES, workset_gen_tallies


class TestErrorHierarchy:
    def test_all_exported_errors_derive_from_base(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, ReproError), name

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise errors.GraphFormatError("bad file")

    def test_format_error_is_graph_error(self):
        assert issubclass(errors.GraphFormatError, errors.GraphError)


class TestFindmin:
    def test_minimum_over_finite(self):
        assert findmin(np.array([3.0, np.inf, 1.5])) == 1.5

    def test_all_infinite_is_identity(self):
        # The reduction's identity, not a crash: an all-+inf working set
        # means "nothing left to settle" and the ordered frame treats it
        # as clean convergence.
        assert findmin(np.array([np.inf, np.inf])) == float("inf")

    def test_empty_is_identity(self):
        assert findmin(np.array([], dtype=np.float64)) == float("inf")

    def test_queue_reduces_workset_only(self):
        q = findmin_tallies(1000, 100_000, WorksetRepr.QUEUE, TESLA_C2070)
        b = findmin_tallies(1000, 100_000, WorksetRepr.BITMAP, TESLA_C2070)
        model = CostModel(TESLA_C2070)
        q_time = sum(model.price(t).seconds for t in q)
        b_time = sum(model.price(t).seconds for t in b)
        # Bitmap findmin must reduce over all n slots: strictly costlier.
        assert b_time > q_time

    def test_empty_workset_still_launches(self):
        tallies = findmin_tallies(0, 100, WorksetRepr.QUEUE, TESLA_C2070)
        assert len(tallies) >= 1


class TestPolicyProtocol:
    def test_default_not_ordered(self):
        class Dummy(VariantPolicy):
            def choose(self, iteration, ws):
                return Variant.parse("U_T_BM")

        assert Dummy().is_ordered() is False

    def test_default_overhead_empty(self):
        class Dummy(VariantPolicy):
            def choose(self, iteration, ws):
                return Variant.parse("U_T_BM")

        assert Dummy().overhead_tallies(0, 1, 10, TESLA_C2070) == []

    def test_static_policy_ordered_flag(self):
        assert StaticPolicy(Variant.parse("O_T_QU")).is_ordered() is True
        assert StaticPolicy(Variant.parse("U_T_QU")).is_ordered() is False

    def test_notify_default_noop(self):
        StaticPolicy(Variant.parse("U_T_BM")).notify(None)


class TestQueueGenSchemes:
    def test_registry(self):
        assert QUEUE_GEN_SCHEMES == ("atomic", "scan", "hierarchical")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(WorksetError, match="unknown queue generation"):
            workset_gen_tallies(
                100, 10, WorksetRepr.QUEUE, TESLA_C2070, scheme="quantum"
            )

    def test_hierarchical_one_global_atomic_per_block(self):
        tallies = workset_gen_tallies(
            100_000, 40_000, WorksetRepr.QUEUE, TESLA_C2070, scheme="hierarchical"
        )
        main = tallies[-1]
        assert main.atomics_same_address == main.launch.grid_blocks

    def test_hierarchical_beats_atomic_on_large_frontier(self):
        model = CostModel(TESLA_C2070)
        n, u = 500_000, 200_000
        flat = sum(
            model.price(t).seconds
            for t in workset_gen_tallies(n, u, WorksetRepr.QUEUE, TESLA_C2070)
        )
        hier = sum(
            model.price(t).seconds
            for t in workset_gen_tallies(
                n, u, WorksetRepr.QUEUE, TESLA_C2070, scheme="hierarchical"
            )
        )
        assert hier < flat

    def test_use_scan_alias(self):
        a = workset_gen_tallies(
            1000, 100, WorksetRepr.QUEUE, TESLA_C2070, use_scan=True
        )
        b = workset_gen_tallies(
            1000, 100, WorksetRepr.QUEUE, TESLA_C2070, scheme="scan"
        )
        assert len(a) == len(b)
        assert a[-1].atomics_same_address == 0

    def test_bitmap_ignores_scheme(self):
        for scheme in QUEUE_GEN_SCHEMES:
            tallies = workset_gen_tallies(
                1000, 100, WorksetRepr.BITMAP, TESLA_C2070, scheme=scheme
            )
            assert len(tallies) == 1
            assert tallies[0].atomics_same_address == 0


class TestDeviceMemoryCapacity:
    def test_oversized_graph_rejected(self):
        from repro.errors import KernelError
        from repro.graph.generators import chain_graph
        from repro.kernels import run_bfs

        tiny_device = TESLA_C2070.with_overrides(global_mem_bytes=1024)
        with pytest.raises(KernelError, match="device memory"):
            run_bfs(chain_graph(10_000), 0, "U_T_BM", device=tiny_device)

    def test_fitting_graph_accepted(self):
        from repro.graph.generators import chain_graph
        from repro.kernels import run_bfs

        run_bfs(chain_graph(100), 0, "U_T_BM")  # 6 GB is plenty


class TestRuntimeQueueGenConfig:
    def test_adaptive_honors_queue_gen(self):
        from repro.core import RuntimeConfig, adaptive_sssp
        from repro.errors import RuntimeConfigError
        from repro.graph.generators import attach_uniform_weights, erdos_renyi_graph

        g = attach_uniform_weights(erdos_renyi_graph(5000, 30_000, seed=20), seed=21)
        base = adaptive_sssp(g, 0, config=RuntimeConfig(queue_gen="atomic"))
        hier = adaptive_sssp(g, 0, config=RuntimeConfig(queue_gen="hierarchical"))
        assert np.allclose(base.values, hier.values)
        assert hier.total_seconds <= base.total_seconds

        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(queue_gen="psychic")


class TestOrderedConvergence:
    """Regression: an ordered working set holding only stale +inf
    entries crashed the findmin reduction with ValueError instead of
    letting the traversal terminate cleanly."""

    def test_all_stale_workset_terminates_cleanly(self, tiny_weighted):
        from repro.engine.spec import FrameState
        from repro.kernels.computation import OrderedSsspState
        from repro.kernels.frame import OrderedSsspSpec
        from repro.kernels.variants import Variant

        class Ctx:
            def __init__(self, graph):
                self.graph = graph
                self.device = TESLA_C2070
                self.priced = []

            def price(self, tally, label=None):
                self.priced.append(tally)

        ordered = OrderedSsspState(
            dist=np.zeros(tiny_weighted.num_nodes),
            ws_nodes=np.array([3, 4], dtype=np.int64),
            ws_keys=np.array([np.inf, np.inf]),
            dedupe=False,
        )
        state = FrameState(
            ordered.dist, np.empty(0, dtype=np.int64), ordered=ordered
        )
        ctx = Ctx(tiny_weighted)
        outcome = OrderedSsspSpec().compute(
            ctx, state, Variant.parse("O_T_QU"), 128
        )
        # None = the step itself detected termination; the findmin
        # reduction still launched and was priced.
        assert outcome is None
        assert len(ctx.priced) >= 1
