"""The exception hierarchy contract.

Every intentional error in the library derives from ``ReproError`` so a
caller can catch one base class; subsystem subclasses let tests and
users discriminate failure modes without string matching.  The watchdog
verdict ``NonConvergenceError`` must surface from the traversal frames
when an iteration budget is exhausted, and its message must name the
cap so logs are actionable.
"""

import pytest

import repro.errors as errors_mod
from repro.errors import (
    DeviceError,
    FaultPlanError,
    KernelError,
    MemoryFaultError,
    NonConvergenceError,
    ReproError,
    RuntimeConfigError,
)
from repro.graph.generators import attach_uniform_weights, erdos_renyi_graph
from repro.kernels import StaticPolicy
from repro.kernels.frame import traverse_bfs, traverse_sssp
from repro.kernels.variants import Variant


def _policy():
    return StaticPolicy(Variant.parse("U_T_QU"))


class TestHierarchy:
    @pytest.mark.parametrize("name", errors_mod.__all__)
    def test_every_class_raisable_and_catchable_via_base(self, name):
        cls = getattr(errors_mod, name)
        assert isinstance(cls, type) and issubclass(cls, ReproError)
        with pytest.raises(ReproError) as exc:
            raise cls(f"synthetic {name}")
        assert exc.type is cls
        assert f"synthetic {name}" in str(exc.value)

    def test_all_is_exhaustive(self):
        exported = {
            name
            for name, obj in vars(errors_mod).items()
            if isinstance(obj, type) and issubclass(obj, ReproError)
        }
        assert exported == set(errors_mod.__all__)

    def test_reliability_subclass_relations(self):
        # The reliability layer slots into existing subsystems: the
        # watchdog verdict is a kernel-frame error, a simulated memory
        # fault is a device error, and a malformed fault plan is a
        # runtime-configuration error.
        assert issubclass(NonConvergenceError, KernelError)
        assert issubclass(MemoryFaultError, DeviceError)
        assert issubclass(FaultPlanError, RuntimeConfigError)

    def test_distinct_types_discriminate(self):
        with pytest.raises(KernelError):
            raise NonConvergenceError("budget gone")
        with pytest.raises(DeviceError):
            raise MemoryFaultError("bitflip")
        # ... but not across subsystems:
        assert not issubclass(MemoryFaultError, KernelError)


class TestNonConvergence:
    def test_bfs_tiny_iteration_budget(self):
        graph = erdos_renyi_graph(200, 1200, seed=5)
        with pytest.raises(NonConvergenceError) as exc:
            traverse_bfs(graph, 0, _policy(), max_iterations=1)
        assert "1" in str(exc.value)
        assert "iteration" in str(exc.value)

    def test_sssp_tiny_iteration_budget(self):
        graph = attach_uniform_weights(erdos_renyi_graph(200, 1200, seed=6), seed=7)
        with pytest.raises(NonConvergenceError) as exc:
            traverse_sssp(graph, 0, _policy(), max_iterations=2)
        assert "2" in str(exc.value)

    def test_generous_budget_converges(self):
        graph = erdos_renyi_graph(200, 1200, seed=5)
        result = traverse_bfs(graph, 0, _policy(), max_iterations=10_000)
        assert result.values[0] == 0

    def test_catchable_as_kernel_error(self):
        graph = erdos_renyi_graph(120, 700, seed=8)
        with pytest.raises(KernelError):
            traverse_bfs(graph, 0, _policy(), max_iterations=1)
