"""Tests for repro.graph.builder."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import from_coo, from_edge_list, from_networkx, to_networkx


class TestFromEdgeList:
    def test_basic(self):
        g = from_edge_list([0, 0, 1], [1, 2, 2], num_nodes=3)
        assert g.num_edges == 3
        assert g.neighbors(0).tolist() == [1, 2]

    def test_infers_num_nodes(self):
        g = from_edge_list([0], [9])
        assert g.num_nodes == 10

    def test_num_nodes_too_small(self):
        with pytest.raises(GraphError):
            from_edge_list([0], [5], num_nodes=3)

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError, match="negative"):
            from_edge_list([-1], [0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(GraphError):
            from_edge_list([0, 1], [1])

    def test_empty_edge_list(self):
        g = from_edge_list([], [], num_nodes=4)
        assert g.num_nodes == 4
        assert g.num_edges == 0

    def test_symmetric(self):
        g = from_edge_list([0], [1], num_nodes=2, symmetric=True)
        assert g.num_edges == 2
        assert g.neighbors(1).tolist() == [0]

    def test_drop_self_loops(self):
        g = from_edge_list([0, 1], [0, 0], num_nodes=2, drop_self_loops=True)
        assert g.num_edges == 1

    def test_dedupe_keeps_min_weight(self):
        g = from_edge_list(
            [0, 0, 0], [1, 1, 2], weights=[5.0, 2.0, 9.0], num_nodes=3, dedupe=True
        )
        assert g.num_edges == 2
        pos = g.neighbors(0).tolist().index(1)
        assert g.edge_weights_of(0)[pos] == 2.0

    def test_dedupe_without_weights(self):
        g = from_edge_list([0, 0, 0], [1, 1, 1], num_nodes=2, dedupe=True)
        assert g.num_edges == 1

    def test_weights_length_mismatch(self):
        with pytest.raises(GraphError, match="weights"):
            from_edge_list([0], [1], weights=[1.0, 2.0])

    def test_unsorted_input_sorted_in_csr(self):
        g = from_edge_list([2, 0, 1], [0, 1, 2], num_nodes=3)
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(2).tolist() == [0]

    def test_symmetric_duplicates_weights(self):
        g = from_edge_list([0], [1], weights=[3.0], num_nodes=2, symmetric=True)
        assert g.edge_weights_of(1).tolist() == [3.0]


class TestFromCoo:
    def test_pairs(self):
        g = from_coo([(0, 1), (1, 2)], num_nodes=3)
        assert g.num_edges == 2

    def test_empty(self):
        g = from_coo([], num_nodes=2)
        assert g.num_edges == 0

    def test_bad_shape(self):
        with pytest.raises(GraphError):
            from_coo([(0, 1, 2)])


class TestNetworkxRoundtrip:
    def test_digraph_roundtrip(self, tiny_graph):
        nxg = to_networkx(tiny_graph)
        assert nxg.number_of_nodes() == tiny_graph.num_nodes
        assert nxg.number_of_edges() == tiny_graph.num_edges
        back = from_networkx(nxg)
        assert back == tiny_graph

    def test_weighted_roundtrip(self, tiny_weighted):
        nxg = to_networkx(tiny_weighted)
        back = from_networkx(nxg, weight_attr="weight")
        assert np.allclose(back.weights, tiny_weighted.weights)

    def test_undirected_becomes_symmetric(self):
        import networkx as nx

        nxg = nx.path_graph(4)
        g = from_networkx(nxg)
        assert g.num_edges == 6  # 3 undirected edges -> 6 arcs
