"""Tests for repro.graph.csr (the CSR structure itself)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_figure7_layout(self, tiny_graph):
        # Node vector indexes the edge vector, Figure 7 semantics.
        assert tiny_graph.num_nodes == 5
        assert tiny_graph.num_edges == 6
        assert tiny_graph.neighbors(0).tolist() == [1, 2]
        assert tiny_graph.neighbors(2).tolist() == [3, 4]
        assert tiny_graph.neighbors(4).tolist() == []

    def test_empty_graph(self):
        g = CSRGraph.empty(4)
        assert g.num_nodes == 4
        assert g.num_edges == 0
        assert g.out_degrees.tolist() == [0, 0, 0, 0]

    def test_zero_node_graph(self):
        g = CSRGraph.empty(0)
        assert g.num_nodes == 0
        assert g.avg_out_degree == 0.0

    def test_rejects_bad_first_offset(self):
        with pytest.raises(GraphError, match="row_offsets\\[0\\]"):
            CSRGraph([1, 2], [0, 0])

    def test_rejects_mismatched_final_offset(self):
        with pytest.raises(GraphError):
            CSRGraph([0, 3], [0])

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(GraphError, match="non-decreasing"):
            CSRGraph([0, 2, 1, 3], [0, 1, 2])

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(GraphError, match="out of range"):
            CSRGraph([0, 1], [5])

    def test_rejects_negative_weights(self):
        with pytest.raises(GraphError, match="negative"):
            CSRGraph([0, 1], [0], weights=[-1.0])

    def test_rejects_nonfinite_weights(self):
        with pytest.raises(GraphError, match="finite"):
            CSRGraph([0, 1], [0], weights=[np.inf])

    def test_rejects_weight_shape_mismatch(self):
        with pytest.raises(GraphError, match="shape"):
            CSRGraph([0, 2], [0, 0], weights=[1.0])


class TestImmutability:
    def test_arrays_read_only(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.row_offsets[0] = 1
        with pytest.raises(ValueError):
            tiny_graph.col_indices[0] = 0

    def test_out_degrees_read_only(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.out_degrees[0] = 99


class TestAccessors:
    def test_out_degree_per_node(self, tiny_graph):
        assert [tiny_graph.out_degree(i) for i in range(5)] == [2, 1, 2, 1, 0]

    def test_out_degrees_matches_scalar(self, tiny_graph):
        assert tiny_graph.out_degrees.tolist() == [2, 1, 2, 1, 0]

    def test_avg_out_degree(self, tiny_graph):
        assert tiny_graph.avg_out_degree == pytest.approx(6 / 5)

    def test_node_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.neighbors(5)
        with pytest.raises(GraphError):
            tiny_graph.out_degree(-1)

    def test_edge_weights_of(self, tiny_weighted):
        assert tiny_weighted.edge_weights_of(0).tolist() == [1.0, 4.0]

    def test_edge_weights_requires_weights(self, tiny_graph):
        with pytest.raises(GraphError, match="no edge weights"):
            tiny_graph.edge_weights_of(0)


class TestDerivedGraphs:
    def test_with_unit_weights(self, tiny_graph):
        g = tiny_graph.with_unit_weights()
        assert g.has_weights
        assert np.all(g.weights == 1.0)
        assert g.num_edges == tiny_graph.num_edges

    def test_reverse_roundtrip(self, tiny_graph):
        assert tiny_graph.reverse().reverse() == tiny_graph

    def test_reverse_edges(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert rev.num_edges == tiny_graph.num_edges
        assert 0 in rev.neighbors(1).tolist()  # 0->1 becomes 1->0

    def test_reverse_preserves_weights(self, tiny_weighted):
        rev = tiny_weighted.reverse()
        # weight of 0->1 (1.0) must follow the reversed edge 1->0
        pos = rev.neighbors(1).tolist().index(0)
        assert rev.edge_weights_of(1)[pos] == 1.0


class TestEqualityAndRepr:
    def test_equality(self, tiny_graph):
        clone = CSRGraph(
            tiny_graph.row_offsets.copy(),
            tiny_graph.col_indices.copy(),
            name="other-name",
        )
        assert clone == tiny_graph  # name not part of equality

    def test_inequality_weights(self, tiny_graph, tiny_weighted):
        assert tiny_graph != tiny_weighted

    def test_repr_mentions_counts(self, tiny_graph):
        r = repr(tiny_graph)
        assert "nodes=5" in r and "edges=6" in r

    def test_device_bytes_positive(self, tiny_weighted):
        assert tiny_weighted.device_bytes() > tiny_weighted.num_edges * 4
