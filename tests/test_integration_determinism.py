"""Integration: end-to-end determinism and cross-dataset correctness."""

import numpy as np
import pytest

from repro.core import adaptive_bfs, adaptive_sssp
from repro.cpu import cpu_bfs, cpu_dijkstra
from repro.graph.datasets import dataset_keys, make_dataset
from repro.graph.properties import largest_out_component_node
from repro.kernels import run_bfs, run_sssp


class TestDeterminism:
    def test_dataset_generation_repeatable(self):
        for key in ("co-road", "amazon"):
            assert make_dataset(key, scale=0.01, seed=3) == make_dataset(
                key, scale=0.01, seed=3
            )

    def test_traversal_times_repeatable(self):
        g = make_dataset("p2p", scale=0.2, weighted=True, seed=3)
        a = run_sssp(g, 0, "U_B_QU")
        b = run_sssp(g, 0, "U_B_QU")
        assert a.total_seconds == b.total_seconds
        assert a.num_iterations == b.num_iterations
        assert np.array_equal(a.values, b.values)

    def test_adaptive_trace_repeatable(self):
        g = make_dataset("google", scale=0.01, seed=4)
        src = largest_out_component_node(g, seed=0)
        a = adaptive_bfs(g, src)
        b = adaptive_bfs(g, src)
        assert a.total_seconds == b.total_seconds
        assert [d.variant for d in a.trace.decisions] == [
            d.variant for d in b.trace.decisions
        ]


@pytest.mark.parametrize("key", dataset_keys())
class TestDatasetsEndToEnd:
    """Adaptive runtime correctness on every dataset analogue."""

    def test_adaptive_bfs_correct(self, key):
        g = make_dataset(key, scale=0.005, seed=2, min_nodes=400)
        src = largest_out_component_node(g, seed=0)
        result = adaptive_bfs(g, src)
        oracle = cpu_bfs(g, src)
        assert np.array_equal(result.values, oracle.levels)
        assert result.traversal.reached == oracle.reached

    def test_adaptive_sssp_correct(self, key):
        g = make_dataset(key, scale=0.005, weighted=True, seed=2, min_nodes=400)
        src = largest_out_component_node(g, seed=0)
        result = adaptive_sssp(g, src)
        oracle = cpu_dijkstra(g, src)
        assert np.allclose(result.values, oracle.distances)

    def test_static_bfs_correct(self, key):
        g = make_dataset(key, scale=0.005, seed=2, min_nodes=400)
        src = largest_out_component_node(g, seed=0)
        oracle = cpu_bfs(g, src)
        for code in ("U_T_BM", "U_B_QU"):
            assert np.array_equal(run_bfs(g, src, code).values, oracle.levels)
