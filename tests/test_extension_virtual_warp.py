"""Tests for the virtual-warp mapping extension (beyond the paper's
T/B space; Section IV.B's "intermediate solutions can be devised")."""

import numpy as np
import pytest

from repro.core import RuntimeConfig, adaptive_sssp
from repro.core.decision import DecisionMaker, Thresholds
from repro.cpu import cpu_bfs, cpu_dijkstra
from repro.errors import RuntimeConfigError
from repro.graph.generators import (
    attach_uniform_weights,
    erdos_renyi_graph,
    power_law_graph,
    star_graph,
)
from repro.gpusim.device import TESLA_C2070
from repro.kernels import run_bfs, run_sssp
from repro.kernels.costs import C_EDGE
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Mapping, Variant, WorksetRepr, extended_variants


class TestExtendedVariants:
    def test_six_variants(self):
        codes = [v.code for v in extended_variants()]
        assert codes == ["U_T_BM", "U_T_QU", "U_W_BM", "U_W_QU", "U_B_BM", "U_B_QU"]

    def test_parse_warp_code(self):
        v = Variant.parse("U_W_QU")
        assert v.mapping is Mapping.WARP

    def test_warp_uses_192_tpb(self):
        v = Variant.parse("U_W_QU")
        assert v.threads_per_block(50.0, TESLA_C2070) == 192

    @pytest.mark.parametrize("code", ["U_W_BM", "U_W_QU", "O_W_QU"])
    def test_correctness(self, code, random_graph, random_weighted):
        assert np.array_equal(
            run_bfs(random_graph, 0, code).values, cpu_bfs(random_graph, 0).levels
        )
        assert np.allclose(
            run_sssp(random_weighted, 0, code).values,
            cpu_dijkstra(random_weighted, 0).distances,
        )


class TestWarpTallyMechanics:
    def _shape(self, degrees):
        active = np.arange(len(degrees), dtype=np.int64)
        return ComputationShape(
            name="w",
            num_nodes=100_000,
            active_ids=active,
            degrees=np.asarray(degrees, dtype=np.int64),
            edge_cost=C_EDGE,
            improved=0,
            updated_count=1,
        )

    def test_no_divergence_on_skew(self):
        """A hub node occupies its own warp: no lane waits for it."""
        uniform = self._shape([8] * 3200)
        skewed_deg = [8] * 3200
        skewed_deg[0] = 8 * 320
        skewed = self._shape(skewed_deg)
        t_u = computation_tally(uniform, Mapping.WARP, WorksetRepr.QUEUE, 192, TESLA_C2070)
        t_s = computation_tally(skewed, Mapping.WARP, WorksetRepr.QUEUE, 192, TESLA_C2070)
        # The extra edges add proportional cost, not a warp-max blowup.
        assert t_s.issue_cycles < 1.3 * t_u.issue_cycles

    def test_cheaper_than_block_on_low_degree(self):
        """Same per-element rounds, but 6 elements share one block's
        dispatch and occupancy slot instead of one block each."""
        from repro.gpusim.kernel import CostModel

        model = CostModel(TESLA_C2070)
        shape = self._shape([8] * 2000)
        warp = computation_tally(shape, Mapping.WARP, WorksetRepr.QUEUE, 192, TESLA_C2070)
        block = computation_tally(shape, Mapping.BLOCK, WorksetRepr.QUEUE, 32, TESLA_C2070)
        assert warp.launch.grid_blocks < block.launch.grid_blocks
        assert model.price(warp).seconds < model.price(block).seconds

    def test_adjacency_coalesced_like_block(self):
        shape = self._shape([256] * 200)
        warp = computation_tally(shape, Mapping.WARP, WorksetRepr.QUEUE, 192, TESLA_C2070)
        thread = computation_tally(shape, Mapping.THREAD, WorksetRepr.QUEUE, 192, TESLA_C2070)
        assert warp.mem_transactions < thread.mem_transactions


class TestExtendedDecisionSpace:
    def _maker(self, **kwargs):
        return DecisionMaker(
            Thresholds(t1=32.0, t2=2688, t3=10_000, t1_low=4.0), **kwargs
        )

    def test_disabled_by_default(self):
        maker = self._maker()
        assert maker.decide(5000, 8.0).mapping is Mapping.THREAD

    def test_warp_band(self):
        maker = self._maker(use_warp_mapping=True)
        assert maker.decide(5000, 2.0).mapping is Mapping.THREAD
        assert maker.decide(5000, 8.0).mapping is Mapping.WARP
        assert maker.decide(5000, 64.0).mapping is Mapping.BLOCK

    def test_small_ws_unchanged(self):
        maker = self._maker(use_warp_mapping=True)
        assert maker.decide(10, 8.0).code == "U_B_QU"

    def test_region_labels(self):
        maker = self._maker(use_warp_mapping=True)
        assert maker.region(5000, 8.0) == "mid-ws/mid-degree"

    def test_thresholds_validate_t1_low(self):
        with pytest.raises(RuntimeConfigError):
            Thresholds(t1=32.0, t2=1, t3=1, t1_low=64.0)
        with pytest.raises(RuntimeConfigError):
            Thresholds(t1=32.0, t2=1, t3=1, t1_low=0.0)


class TestExtendedRuntime:
    def test_config_resolution(self):
        cfg = RuntimeConfig(use_warp_mapping=True)
        assert cfg.resolve_t1_low(TESLA_C2070) == 4.0
        assert RuntimeConfig(t1_low=7.5).resolve_t1_low(TESLA_C2070) == 7.5

    def test_rejects_bad_t1_low(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(t1_low=-1.0)

    def test_extended_adaptive_correct_and_uses_warp(self):
        g = attach_uniform_weights(
            power_law_graph(40_000, alpha=2.0, min_degree=4, max_degree=200, seed=3),
            seed=4,
        )
        src = int(np.argmax(g.out_degrees))
        result = adaptive_sssp(
            g, src, config=RuntimeConfig(use_warp_mapping=True)
        )
        oracle = cpu_dijkstra(g, src)
        assert np.allclose(result.values, oracle.distances)
        assert any(code.startswith("U_W") for code in result.variants_used())

    def test_extension_never_hurts_much(self):
        g = attach_uniform_weights(erdos_renyi_graph(20_000, 120_000, seed=5), seed=6)
        base = adaptive_sssp(g, 0)
        ext = adaptive_sssp(g, 0, config=RuntimeConfig(use_warp_mapping=True))
        assert ext.total_seconds <= 1.1 * base.total_seconds
