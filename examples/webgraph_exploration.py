"""Web-graph exploration: crawl-order levels on a Google-style link graph,
with a look inside the simulator's performance counters.

The paper's web scenario (Section III.A): connectivity of the page-link
network drives ranking and crawling.  Link graphs are heavy-tailed — a
few portal pages have hundreds of outlinks — which is exactly what
punishes thread mapping with warp divergence.  This example runs the
same BFS under thread- and block-mapping and prints the SIMT-efficiency
and occupancy counters the simulator collects, showing *why* one beats
the other.

Run with::

    python examples/webgraph_exploration.py [scale]
"""

import sys

import numpy as np

from repro import adaptive_bfs, run_bfs
from repro.cpu import cpu_bfs
from repro.graph.datasets import make_dataset
from repro.graph.properties import largest_out_component_node, out_degree_histogram
from repro.utils.tables import Table, format_seconds, format_si


def main(scale: float = 0.05) -> None:
    print(f"generating Google web-graph analogue at scale {scale} ...")
    graph = make_dataset("google", scale=scale, seed=11)
    source = largest_out_component_node(graph, seed=0)
    print(
        f"web graph: {format_si(graph.num_nodes)} pages, "
        f"{format_si(graph.num_edges)} links, "
        f"avg outdegree {graph.avg_out_degree:.1f}, "
        f"max outdegree {graph.out_degrees.max()}"
    )

    # The heavy tail at a glance.
    hist = out_degree_histogram(graph, n_bins=10)
    table = Table(["outdegree", "pages", "%"], title="outdegree distribution")
    for label, count, frac in zip(hist.bin_labels(), hist.counts, hist.fractions):
        table.add_row([label, format_si(count), f"{100 * frac:.1f}%"])
    print()
    print(table.render())

    # --- thread vs block mapping, with performance counters -------------
    cpu = cpu_bfs(graph, source)
    print(f"\nserial CPU BFS: {format_seconds(cpu.seconds)}")

    counter_table = Table(
        ["variant", "time", "SIMT efficiency", "avg occupancy", "launches"],
        title="inside the simulated GPU",
    )
    for code in ("U_T_QU", "U_B_QU"):
        r = run_bfs(graph, source, code)
        assert np.array_equal(r.values, cpu.levels)
        comp = [k for k in r.timeline.kernels if k.tally.name.startswith("bfs")]
        eff = np.mean([k.tally.simt_efficiency for k in comp])
        occ = np.mean([k.cost.occupancy for k in comp])
        counter_table.add_row(
            [
                code,
                format_seconds(r.total_seconds),
                f"{eff:.0%}",
                f"{occ:.0%}",
                r.timeline.num_launches,
            ]
        )
    print()
    print(counter_table.render())
    print(
        "under thread mapping a warp waits for its heaviest lane (the hub\n"
        "pages), showing up as low SIMT efficiency; block mapping spreads a\n"
        "hub's outlinks across its lanes but pays idle lanes on the long\n"
        "tail of low-outdegree pages — on this graph neither wins big, and\n"
        "the adaptive runtime splits the traversal between them."
    )

    # --- the adaptive run ------------------------------------------------
    ad = adaptive_bfs(graph, source)
    assert np.array_equal(ad.values, cpu.levels)
    print(
        f"\nadaptive BFS: {format_seconds(ad.total_seconds)} "
        f"({cpu.seconds / ad.total_seconds:.2f}x vs CPU), "
        f"decisions {ad.trace.variants_chosen()}"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
