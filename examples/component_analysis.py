"""Component analysis: a third algorithm on the adaptive runtime, plus
the hybrid CPU-GPU executor on the GPU-hostile case.

Two extension features in one scenario: a network operator wants the
weakly connected components of a peer-to-peer overlay (is the network
partitioned?) and shortest paths over a road map (the topology where
GPUs struggle).  Connected components rides the same adaptive runtime
as BFS/SSSP — its working set starts at *every* node and drains, the
reverse of a BFS ramp — and the road query demonstrates the hybrid
executor recovering the CPU's advantage.

Run with::

    python examples/component_analysis.py
"""

import numpy as np

from repro import adaptive_cc, adaptive_sssp
from repro.core.hybrid import hybrid_sssp
from repro.cpu import cpu_connected_components, cpu_dijkstra
from repro.graph.datasets import make_dataset
from repro.graph.properties import largest_out_component_node
from repro.utils.tables import Table, format_seconds, format_si


def analyze_components() -> None:
    graph = make_dataset("p2p", scale=1.0, seed=21)
    print(
        f"p2p overlay: {format_si(graph.num_nodes)} peers, "
        f"{format_si(graph.num_edges)} links"
    )

    cpu = cpu_connected_components(graph)
    ad = adaptive_cc(graph)
    assert np.array_equal(ad.values, cpu.labels)

    labels, counts = np.unique(ad.values, return_counts=True)
    order = np.argsort(counts)[::-1]
    table = Table(["component", "peers", "% of network"], title="largest components")
    for i in order[:5]:
        table.add_row(
            [int(labels[i]), int(counts[i]),
             f"{100 * counts[i] / graph.num_nodes:.1f}%"]
        )
    print(table.render())
    print(
        f"{cpu.num_components} components total; GPU label propagation "
        f"{format_seconds(ad.total_seconds)} vs union-find "
        f"{format_seconds(cpu.seconds)}"
    )
    curve = ad.traversal.workset_curve()
    print(
        f"working set drained {curve[0]} -> {curve[-1]} over "
        f"{ad.num_iterations} iterations; variants: {ad.variants_used()}"
    )


def analyze_road_routing() -> None:
    graph = make_dataset("co-road", scale=0.05, weighted=True, seed=22)
    source = largest_out_component_node(graph, seed=0)
    print(
        f"\nroad map: {format_si(graph.num_nodes)} intersections, "
        f"{format_si(graph.num_edges)} segments"
    )

    cpu = cpu_dijkstra(graph, source)
    gpu = adaptive_sssp(graph, source)
    hybrid = hybrid_sssp(graph, source)
    assert np.allclose(hybrid.values, cpu.distances)

    table = Table(["executor", "time", "notes"], title="SSSP on the road map")
    table.add_row(["serial CPU", format_seconds(cpu.seconds), "the baseline"])
    table.add_row(
        ["GPU adaptive", format_seconds(gpu.total_seconds),
         "launch+readback x hundreds of tiny iterations"]
    )
    table.add_row(
        ["hybrid CPU-GPU", format_seconds(hybrid.total_seconds),
         f"{hybrid.cpu_iterations} CPU / {hybrid.gpu_iterations} GPU iterations"]
    )
    print(table.render())


def main() -> None:
    analyze_components()
    analyze_road_routing()


if __name__ == "__main__":
    main()
