"""Quickstart: build a graph, run adaptive BFS and SSSP, inspect results.

Run with::

    python examples/quickstart.py
"""

from repro import Graph
from repro.utils.tables import Table, format_seconds


def main() -> None:
    # A small directed graph: node 0 fans out to a diamond that rejoins.
    #
    #        1 --- 3
    #      /   \\ /  \\
    #     0     X     5
    #      \\   / \\  /
    #        2 --- 4
    edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 5), (4, 5)]
    g = Graph.from_edges(edges, num_nodes=6, name="diamond")

    print(f"graph: {g.num_nodes} nodes, {g.num_edges} edges")
    print(f"simulated device: {g.device.name}")
    print()

    # --- BFS under the adaptive runtime --------------------------------
    bfs = g.bfs(source=0)
    print("BFS levels from node 0:", bfs.values.tolist())
    print(f"  iterations: {bfs.num_iterations}")
    print(f"  simulated time: {format_seconds(bfs.total_seconds)}")
    print(f"  variants chosen: {bfs.variants_used()}")
    print()

    # --- SSSP needs weights --------------------------------------------
    weighted = g.with_random_weights(low=1, high=9, seed=7)
    sssp = weighted.sssp(source=0)
    print("SSSP distances from node 0:", sssp.values.tolist())
    print(f"  simulated time: {format_seconds(sssp.total_seconds)}")
    print()

    # --- compare against the static variants ---------------------------
    table = Table(["variant", "time", "iterations"], title="static SSSP variants")
    for code in ("U_T_BM", "U_T_QU", "U_B_BM", "U_B_QU"):
        r = weighted.sssp(source=0, mode=code)
        table.add_row([code, format_seconds(r.total_seconds), r.num_iterations])
    table.add_row(["adaptive", format_seconds(sssp.total_seconds), sssp.num_iterations])
    print(table.render())


if __name__ == "__main__":
    main()
