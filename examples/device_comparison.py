"""What-if device study: the same workload across simulated GPUs.

The adaptive runtime's thresholds derive from the device (T1 = warp
size, T2 = threads/block x #SMs), so the same graph gets *different
decision spaces* on different GPUs.  This example runs one SSSP workload
on three Fermi-class device models and shows how the thresholds, the
decision mix and the simulated time shift.

Run with::

    python examples/device_comparison.py
"""

import numpy as np

from repro import RuntimeConfig, adaptive_sssp
from repro.core.tuning import derive_t2
from repro.cpu import cpu_dijkstra
from repro.graph.datasets import make_dataset
from repro.graph.properties import largest_out_component_node
from repro.gpusim.device import device_registry
from repro.utils.tables import Table, format_seconds


def main() -> None:
    graph = make_dataset("amazon", scale=0.05, weighted=True, seed=3)
    source = largest_out_component_node(graph, seed=0)
    cpu = cpu_dijkstra(graph, source)
    print(
        f"workload: SSSP on the Amazon analogue "
        f"({graph.num_nodes} nodes, {graph.num_edges} edges)"
    )
    print(f"serial CPU Dijkstra: {format_seconds(cpu.seconds)}\n")

    table = Table(
        ["device", "SMs", "T2", "time", "speedup", "switches", "variants used"],
        title="adaptive SSSP across devices",
    )
    for name, device in device_registry().items():
        result = adaptive_sssp(graph, source, device=device)
        assert np.allclose(result.values, cpu.distances)
        table.add_row(
            [
                device.name,
                device.num_sms,
                derive_t2(device),
                format_seconds(result.total_seconds),
                f"{cpu.seconds / result.total_seconds:.2f}x",
                result.num_switches,
                "+".join(sorted(result.variants_used())),
            ]
        )
    print(table.render())
    print(
        "\nbigger devices raise T2 (more SMs need larger working sets to\n"
        "fill) and finish faster; the small Quadro flips more decisions\n"
        "toward thread mapping because its SMs saturate earlier."
    )


if __name__ == "__main__":
    main()
