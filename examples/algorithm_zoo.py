"""Algorithm zoo: five algorithms, one graph, one adaptive runtime.

The paper closes with "we believe that our proposed mechanisms can be
extended and applied to other graph algorithms that exhibit similar
computational patterns."  This example runs everything the repository
implements on one social-network analogue and shows how differently
their working sets travel through the same decision space:

- BFS: ramps 1 -> peak -> drains (a few big iterations);
- SSSP: same shape, fatter and longer (re-relaxation);
- connected components: starts at ALL nodes, drains monotonically;
- PageRank: starts at all nodes, collapses, then trickles at hubs;
- k-core: sawtooth — a burst and cascade per k level.

Run with::

    python examples/algorithm_zoo.py [scale]
"""

import sys

import numpy as np

from repro import (
    RuntimeConfig,
    adaptive_bfs,
    adaptive_cc,
    adaptive_kcore,
    adaptive_pagerank,
    adaptive_sssp,
)
from repro.graph.datasets import make_dataset
from repro.graph.generators import attach_uniform_weights
from repro.graph.properties import largest_out_component_node
from repro.utils.tables import Table, format_seconds, format_si


def sparkline(curve: np.ndarray, width: int = 40) -> str:
    """Render a working-set curve as a tiny ASCII chart."""
    if len(curve) == 0:
        return ""
    idx = np.linspace(0, len(curve) - 1, min(width, len(curve))).astype(int)
    sampled = curve[idx].astype(float)
    peak = max(1.0, sampled.max())
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))]
        for v in sampled
    )


def main(scale: float = 0.02) -> None:
    graph = make_dataset("sns", scale=scale, seed=33)
    weighted = attach_uniform_weights(graph, seed=34)
    source = largest_out_component_node(graph, seed=0)
    print(
        f"social graph: {format_si(graph.num_nodes)} nodes, "
        f"{format_si(graph.num_edges)} edges; source {source}\n"
    )

    runs = {
        "BFS": adaptive_bfs(graph, source),
        "SSSP": adaptive_sssp(weighted, source),
        "connected components": adaptive_cc(graph),
        "PageRank": adaptive_pagerank(graph, tolerance=1e-6),
        "k-core": adaptive_kcore(graph),
    }

    table = Table(
        ["algorithm", "iterations", "time", "switches", "variants"],
        title="five algorithms under one adaptive runtime",
    )
    for name, result in runs.items():
        table.add_row(
            [
                name,
                result.num_iterations,
                format_seconds(result.total_seconds),
                result.num_switches,
                "+".join(sorted(result.variants_used())),
            ]
        )
    print(table.render())

    print("\nworking-set trajectories (each scaled to its own peak):")
    for name, result in runs.items():
        curve = result.traversal.workset_curve()
        print(f"  {name:22s} |{sparkline(curve)}|  peak {format_si(curve.max())}")

    # Cross-algorithm facts from one run each.
    bfs_levels = runs["BFS"].values
    coreness = runs["k-core"].values
    ranks = runs["PageRank"].values
    hub = int(np.argmax(ranks))
    print(
        f"\nhighest-PageRank node: {hub} "
        f"(coreness {coreness[hub]}, {int((bfs_levels == 1).sum())} direct "
        f"neighbors of the source, max core {coreness.max()})"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
