"""Social-network reachability: degrees of separation on an SNS graph.

The paper's social-network scenario (Section III.A): connectivity
properties over a LiveJournal-style graph, e.g. the friend-suggestion
feature needs everyone within k hops.  BFS frontiers on such graphs
explode within a few hops — the opposite regime from the road network —
and the adaptive runtime rides the explosion by switching from the
queue to the bitmap representation mid-traversal.

Run with::

    python examples/social_reachability.py [scale]
"""

import sys

import numpy as np

from repro import adaptive_bfs, run_static, unordered_variants
from repro.cpu import cpu_bfs
from repro.graph.datasets import make_dataset
from repro.graph.properties import largest_out_component_node
from repro.utils.tables import Table, format_seconds, format_si


def main(scale: float = 0.02) -> None:
    print(f"generating SNS (LiveJournal-style) analogue at scale {scale} ...")
    graph = make_dataset("sns", scale=scale, seed=7)
    source = largest_out_component_node(graph, seed=0)
    print(
        f"social graph: {format_si(graph.num_nodes)} users, "
        f"{format_si(graph.num_edges)} follow edges, "
        f"max outdegree {graph.out_degrees.max()}"
    )

    cpu = cpu_bfs(graph, source)
    ad = adaptive_bfs(graph, source)
    assert np.array_equal(ad.values, cpu.levels)

    # --- degrees of separation ------------------------------------------
    levels = ad.values[ad.values >= 0]
    print(f"\nreachable users from user {source}: {format_si(levels.size)}")
    table = Table(["hops", "users", "cumulative %"], title="degrees of separation")
    cumulative = 0
    for hop in range(int(levels.max()) + 1):
        count = int((levels == hop).sum())
        cumulative += count
        table.add_row([hop, format_si(count), f"{100 * cumulative / levels.size:.1f}%"])
    print(table.render())

    # --- how the frontier evolved and what the runtime chose -------------
    print("\nfrontier size and variant per BFS level:")
    for rec in ad.traversal.iterations:
        bar = "#" * max(1, int(40 * rec.workset_size / max(1, graph.num_nodes // 10)))
        print(
            f"  hop {rec.iteration:2d}  ws={rec.workset_size:>8d}  "
            f"{rec.variant}  {bar}"
        )
    print(f"\nruntime switches: {ad.num_switches}; decisions: {ad.trace.variants_chosen()}")

    # --- value of adaptivity ---------------------------------------------
    table = Table(["implementation", "time", "speedup vs CPU"], title="BFS comparison")
    table.add_row(["serial CPU", format_seconds(cpu.seconds), "1.00x"])
    for variant in unordered_variants():
        r = run_static(graph, source, "bfs", variant)
        table.add_row(
            [variant.code, format_seconds(r.total_seconds),
             f"{cpu.seconds / r.total_seconds:.2f}x"]
        )
    table.add_row(
        ["adaptive", format_seconds(ad.total_seconds),
         f"{cpu.seconds / ad.total_seconds:.2f}x"]
    )
    print()
    print(table.render())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
