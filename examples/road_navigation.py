"""Road-network navigation: shortest paths on a CO-road-style graph.

The paper's motivating road scenario (Section III.A): a sparse,
large-diameter network where GPS-style routing computes shortest paths.
This example shows why such graphs are the *hard* case for GPUs — tiny
frontiers for thousands of iterations — and how the adaptive runtime's
small-working-set region (block mapping + queue) keeps it at the best
static variant's level while a badly chosen static variant collapses.

Run with::

    python examples/road_navigation.py [scale]
"""

import sys

import numpy as np

from repro import adaptive_sssp, run_static, unordered_variants
from repro.cpu import cpu_dijkstra
from repro.graph.datasets import make_dataset
from repro.graph.properties import largest_out_component_node, pseudo_diameter
from repro.utils.tables import Table, format_seconds


def main(scale: float = 0.05) -> None:
    print(f"generating CO-road analogue at scale {scale} ...")
    graph = make_dataset("co-road", scale=scale, weighted=True, seed=42)
    source = largest_out_component_node(graph, seed=0)
    diameter = pseudo_diameter(graph, seed=0)
    print(
        f"road map: {graph.num_nodes} intersections, {graph.num_edges} road "
        f"segments, avg degree {graph.avg_out_degree:.1f}, "
        f"pseudo-diameter {diameter} hops"
    )

    # Serial CPU baseline (what a navigation server would run per query).
    cpu = cpu_dijkstra(graph, source)
    print(f"\nserial CPU Dijkstra: {format_seconds(cpu.seconds)} "
          f"({cpu.reached} intersections reachable)")

    table = Table(
        ["implementation", "time", "speedup vs CPU", "iterations"],
        title="GPU SSSP on the road network",
    )
    for variant in unordered_variants():
        r = run_static(graph, source, "sssp", variant)
        assert np.allclose(r.values, cpu.distances)
        table.add_row(
            [
                variant.code,
                format_seconds(r.total_seconds),
                f"{cpu.seconds / r.total_seconds:.2f}x",
                r.num_iterations,
            ]
        )
    ad = adaptive_sssp(graph, source)
    assert np.allclose(ad.values, cpu.distances)
    table.add_row(
        [
            "adaptive",
            format_seconds(ad.total_seconds),
            f"{cpu.seconds / ad.total_seconds:.2f}x",
            ad.num_iterations,
        ]
    )
    print()
    print(table.render())

    print(
        f"\nadaptive runtime decisions: {ad.trace.variants_chosen()} "
        f"({ad.num_switches} switches)"
    )
    print(
        "note: road networks expose so little frontier parallelism that the\n"
        "GPU cannot beat a serial CPU here — exactly the paper's CO-road\n"
        "result, and the reason a runtime must avoid the bitmap variants\n"
        "whose full-graph sweeps multiply the per-iteration overhead."
    )

    # A sample "route query": distance to the farthest reachable node.
    reached = np.isfinite(ad.values)
    far = int(np.argmax(np.where(reached, ad.values, -np.inf)))
    print(
        f"\nlongest shortest route from node {source}: to node {far}, "
        f"cost {ad.values[far]:.0f}"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
