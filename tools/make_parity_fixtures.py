#!/usr/bin/env python
"""Generate the golden engine-parity fixtures.

The fixtures pin the *observable* behaviour of every traversal entry
point — values, per-iteration records and simulated times — so the
iteration-engine refactor (and any future one) can prove bit-identical
results against the pre-refactor implementation.  The committed
``tests/fixtures/engine_parity.json`` was produced by running this
script against the pre-engine code; ``tests/test_engine_parity.py``
re-runs the same workloads and diffs against it, and CI's
``engine-parity`` job keeps the diff honest.

Regenerate (only when behaviour is *meant* to change) with::

    PYTHONPATH=src python tools/make_parity_fixtures.py
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro import (  # noqa: E402
    adaptive_bfs,
    adaptive_cc,
    adaptive_kcore,
    adaptive_pagerank,
    adaptive_sssp,
    resilient_bfs,
    run_bfs,
    run_cc,
    run_kcore,
    run_pagerank,
    run_sssp,
)
from repro.core import adaptive_run  # noqa: E402
from repro.graph.datasets import make_dataset  # noqa: E402
from repro.kernels.dobfs import direction_optimizing_bfs  # noqa: E402
from repro.kernels.triangles import run_triangles, traverse_triangles  # noqa: E402
from repro.reliability import FaultPlan, GuardConfig  # noqa: E402

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "tests", "fixtures", "engine_parity.json"
)

#: the two fixture workloads: one sparse road-like graph, one denser
#: power-law graph — both tiny enough for CI but multi-iteration.
WORKLOADS = {
    "p2p": dict(key="p2p", scale=0.25, seed=7, source=0),
    "citeseer": dict(key="citeseer", scale=0.04, seed=3, source=1),
}


def _digest(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def _records(result) -> list:
    return [
        [
            r.iteration,
            r.variant,
            r.workset_size,
            r.processed,
            r.updated,
            r.edges_scanned,
            r.improved_relaxations,
            float(r.seconds).hex(),
        ]
        for r in result.iterations
    ]


def _fused_parity(unfused, fused) -> dict:
    """Golden record that a fused run matched its unfused twin: the
    shared value digest, both decision traces (iteration records minus
    the seconds column, which fusion is *allowed* to change), and the
    fused run's own times and fusion counters."""
    assert _digest(unfused.values) == _digest(fused.values)
    stats = fused.fusion
    return {
        "values_sha256": _digest(fused.values),
        "decisions": [r[:-1] for r in _records(fused)],
        "decisions_match_unfused": (
            [r[:-1] for r in _records(fused)] == [r[:-1] for r in _records(unfused)]
        ),
        "fused_iterations": stats.fused_iterations,
        "refused_iterations": stats.refused_iterations,
        "hoisted_h2d_bytes": stats.hoisted_h2d_bytes,
        "overhead_saved_s": float(stats.overhead_saved_s).hex(),
        "total_seconds": float(fused.total_seconds).hex(),
        "unfused_total_seconds": float(unfused.total_seconds).hex(),
    }


def _traversal(result) -> dict:
    tl = result.timeline
    return {
        "algorithm": result.algorithm,
        "policy": result.policy_name,
        "values_sha256": _digest(result.values),
        "values_dtype": str(result.values.dtype),
        "num_iterations": len(result.iterations),
        "records": _records(result),
        "gpu_seconds": float(tl.gpu_seconds).hex(),
        "transfer_seconds": float(tl.transfer_seconds).hex(),
        "host_seconds": float(tl.host_seconds).hex(),
        "total_seconds": float(tl.total_seconds).hex(),
        "num_kernels": len(tl.kernels),
        "num_transfers": len(tl.transfers),
    }


def build() -> dict:
    out = {"schema": 1, "workloads": {}}
    for label, spec in WORKLOADS.items():
        graph = make_dataset(
            spec["key"], scale=spec["scale"], weighted=True, seed=spec["seed"]
        )
        source = spec["source"]
        entry = {
            "dataset": spec,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "runs": {},
        }
        runs = entry["runs"]
        runs["run_bfs_U_T_BM"] = _traversal(run_bfs(graph, source, "U_T_BM"))
        runs["run_bfs_U_B_QU"] = _traversal(run_bfs(graph, source, "U_B_QU"))
        runs["run_sssp_U_T_QU"] = _traversal(run_sssp(graph, source, "U_T_QU"))
        runs["run_sssp_O_T_QU"] = _traversal(run_sssp(graph, source, "O_T_QU"))
        runs["adaptive_bfs"] = _traversal(adaptive_bfs(graph, source).traversal)
        runs["adaptive_sssp"] = _traversal(adaptive_sssp(graph, source).traversal)
        runs["adaptive_cc"] = _traversal(adaptive_cc(graph).traversal)
        runs["adaptive_pagerank"] = _traversal(adaptive_pagerank(graph).traversal)
        runs["adaptive_kcore"] = _traversal(adaptive_kcore(graph).traversal)
        runs["run_pagerank"] = _traversal(run_pagerank(graph))
        runs["run_cc"] = _traversal(run_cc(graph))
        runs["run_kcore"] = _traversal(run_kcore(graph))
        runs["dobfs"] = _traversal(direction_optimizing_bfs(graph, source))
        runs["run_triangles"] = _traversal(run_triangles(graph))
        runs["adaptive_triangles"] = _traversal(
            adaptive_run(graph, "triangles", -1).traversal
        )

        # Fused-vs-unfused parity: every registry algorithm through the
        # spec-fusion pass, static (fuse-always) and adaptive
        # (bitmap-only) plans alike, pinned against its unfused twin.
        fused = {}
        fused["static_bfs_U_T_BM"] = _fused_parity(
            run_bfs(graph, source, "U_T_BM"),
            run_bfs(graph, source, "U_T_BM", fusion=True),
        )
        fused["static_bfs_U_B_QU"] = _fused_parity(
            run_bfs(graph, source, "U_B_QU"),
            run_bfs(graph, source, "U_B_QU", fusion=True),
        )
        fused["static_sssp_O_T_QU"] = _fused_parity(
            run_sssp(graph, source, "O_T_QU"),
            run_sssp(graph, source, "O_T_QU", fusion=True),
        )
        for algo in ("bfs", "sssp", "cc", "pagerank", "kcore", "triangles"):
            src = source if algo in ("bfs", "sssp") else -1
            fused[f"adaptive_{algo}"] = _fused_parity(
                adaptive_run(graph, algo, src).traversal,
                adaptive_run(graph, algo, src, fuse=True).traversal,
            )
        fused["dobfs"] = _fused_parity(
            direction_optimizing_bfs(graph, source),
            direction_optimizing_bfs(graph, source, fusion=True),
        )
        fused["static_triangles_U_T_QU"] = _fused_parity(
            run_triangles(graph), run_triangles(graph, fusion=True)
        )
        entry["fused_parity"] = fused

        plan = FaultPlan(seed=13, memory_fault_rate=0.25, max_faults=2)
        res = resilient_bfs(
            graph,
            source,
            guard=GuardConfig(checkpoint_every=2, seed=5),
            plan=plan,
        )
        runs["resilient_bfs_faulted"] = {
            "values_sha256": _digest(res.values),
            "attempts": res.attempts,
            "num_faults": len(res.faults),
            "degraded": res.degraded,
            "stage": res.stage,
            "final_seconds": float(res.final_seconds).hex(),
        }
        out["workloads"][label] = entry
    return out


def main() -> int:
    fixture = build()
    os.makedirs(os.path.dirname(FIXTURE_PATH), exist_ok=True)
    with open(FIXTURE_PATH, "w", encoding="utf-8") as fh:
        json.dump(fixture, fh, indent=1, sort_keys=True)
        fh.write("\n")
    n_runs = sum(len(w["runs"]) for w in fixture["workloads"].values())
    print(f"wrote {FIXTURE_PATH} ({n_runs} runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
