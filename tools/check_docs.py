#!/usr/bin/env python
"""Docs health checker: links resolve, examples run.

Two stdlib-only checks over the Markdown docs, runnable locally and in
the CI ``docs`` job (also exercised as pytest cases in
``tests/test_docs.py``):

1. **Link check** — every relative Markdown link in ``docs/*.md``,
   ``README.md`` and the other top-level docs must point at a file
   that exists (anchors are stripped; external ``http(s):``/
   ``mailto:`` links are not fetched).
2. **Example check** — every fenced ``python`` code block in
   ``docs/observability.md`` is executed in one shared namespace, so
   the documented API really behaves as written (blocks full of
   assertions double as doctests).
3. **Orphan check** — every ``docs/*.md`` file must be reachable from
   ``README.md`` by following relative Markdown links, so a doc cannot
   quietly fall out of the navigation graph.

Exit code 0 when everything passes; 1 with one line per problem.
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: documents whose relative links are verified
LINKED_DOCS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/api.md",
    "docs/architecture.md",
    "docs/adaptive-runtime.md",
    "docs/dynamic.md",
    "docs/engine.md",
    "docs/fusion.md",
    "docs/learned-policy.md",
    "docs/memory.md",
    "docs/observability.md",
    "docs/paper-map.md",
    "docs/reliability.md",
    "docs/serving.md",
    "docs/sharding.md",
    "docs/simulator.md",
)

#: documents whose fenced python examples are executed
EXECUTED_DOCS = ("docs/observability.md",)

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_PATTERN = re.compile(r"^```python\s*$(.*?)^```\s*$", re.M | re.S)


def iter_relative_links(text):
    """Yield link targets that should resolve on the local filesystem."""
    for match in _LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def check_links(docs=LINKED_DOCS, root=REPO_ROOT):
    """Return a list of 'doc: broken target' problem strings."""
    problems = []
    for doc in docs:
        path = os.path.join(root, doc)
        if not os.path.exists(path):
            problems.append(f"{doc}: document itself is missing")
            continue
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        base = os.path.dirname(path)
        for target in iter_relative_links(text):
            if not target:
                continue
            if not os.path.exists(os.path.join(base, target)):
                problems.append(f"{doc}: broken link -> {target}")
    return problems


def extract_python_blocks(doc, root=REPO_ROOT):
    """The fenced ``python`` code blocks of *doc*, in order."""
    with open(os.path.join(root, doc), encoding="utf-8") as fh:
        text = fh.read()
    return [block.strip() for block in _FENCE_PATTERN.findall(text)]


def run_examples(docs=EXECUTED_DOCS, root=REPO_ROOT):
    """Execute each doc's python blocks in one shared namespace;
    returns a list of 'doc block N: error' problem strings."""
    problems = []
    for doc in docs:
        namespace = {"__name__": f"docexec:{doc}"}
        for i, block in enumerate(extract_python_blocks(doc, root), 1):
            try:
                exec(compile(block, f"{doc}[block {i}]", "exec"), namespace)
            except Exception as exc:  # noqa: BLE001 - report, don't die
                problems.append(f"{doc} block {i}: {type(exc).__name__}: {exc}")
    return problems


def check_orphans(root=REPO_ROOT, start="README.md"):
    """Return problem strings for docs/*.md files not reachable from
    *start* by following relative Markdown links."""
    reachable = set()
    frontier = [start]
    while frontier:
        doc = frontier.pop()
        if doc in reachable:
            continue
        reachable.add(doc)
        path = os.path.join(root, doc)
        if not os.path.exists(path) or not doc.endswith(".md"):
            continue
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        base = os.path.dirname(path)
        for target in iter_relative_links(text):
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            frontier.append(os.path.relpath(resolved, root))
    problems = []
    docs_dir = os.path.join(root, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if not name.endswith(".md"):
            continue
        doc = os.path.join("docs", name)
        if doc not in reachable:
            problems.append(
                f"{doc}: orphaned — not reachable from {start} by "
                "relative links"
            )
    return problems


def main() -> int:
    problems = check_links() + check_orphans() + run_examples()
    for problem in problems:
        print(f"check_docs: {problem}", file=sys.stderr)
    if not problems:
        docs = len(LINKED_DOCS)
        blocks = sum(len(extract_python_blocks(d)) for d in EXECUTED_DOCS)
        print(f"check_docs: OK ({docs} docs link-checked, "
              f"orphan check passed, {blocks} examples executed)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
