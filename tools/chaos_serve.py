#!/usr/bin/env python
"""Chaos-soak the serve loop from the shell: ``python tools/chaos_serve.py``.

A thin wrapper over ``repro chaos`` for environments that invoke tools
by path (CI jobs, cron); all arguments are forwarded verbatim, and the
exit code is the soak's verdict (0 = every invariant held, 1 = a
violation, 2 = configuration error).

    python tools/chaos_serve.py --queries 200 --seed 7 \
        --manifest chaos.json
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["chaos", *sys.argv[1:]]))
